/**
 * @file
 * Tests for the fault-tolerance layer: failpoint spec parsing and
 * deterministic firing, the campaign retry/quarantine loop, the
 * wall-clock watchdog and instruction hard deadline, and the
 * degraded-report contract (partial results, error records, byte
 * identity of everything that did not fail, manifest round-trip).
 *
 * Failpoint state is process-global, so every test arms its sites
 * through the ChaosTest fixture, whose TearDown disarms them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/failpoint.hh"
#include "base/fault.hh"
#include "driver/campaign.hh"
#include "driver/report.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "sim/manifest.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"

namespace dvi
{
namespace
{

class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override { fail::reset(); }
    void TearDown() override { fail::reset(); }
};

sim::Scenario
timingScenario(workload::BenchmarkId id, const sim::DviPreset &preset,
               std::uint64_t insts)
{
    sim::Scenario s;
    s.runner = "timing";
    s.workload = id;
    s.budget.maxInsts = insts;
    sim::applyPreset(s, preset);
    return s;
}

/** Two tiny timing jobs — enough to have a survivor next to a
 * quarantined job. */
driver::Campaign
smallCampaign(std::uint64_t insts = 3000)
{
    driver::Campaign c("chaos-campaign");
    c.add(timingScenario(workload::BenchmarkId::Li,
                         sim::presetNone(), insts));
    c.add(timingScenario(workload::BenchmarkId::Li,
                         sim::presetFull(), insts));
    return c;
}

std::uint64_t
gaugeValue(const obs::MetricRegistry &reg, const std::string &name)
{
    for (const auto &g : reg.snapshot().gauges)
        if (g.first == name)
            return g.second;
    return 0;
}

std::uint64_t
counterValue(const obs::MetricRegistry &reg, const std::string &name)
{
    for (const auto &c : reg.snapshot().counters)
        if (c.first == name)
            return c.second;
    return 0;
}

// ------------------------------------------------- spec parsing

TEST_F(ChaosTest, SpecParsing)
{
    EXPECT_EQ(fail::configure(""), "");
    EXPECT_FALSE(fail::armed());

    EXPECT_EQ(fail::configure("a=throw"), "");
    EXPECT_TRUE(fail::armed());
    EXPECT_EQ(fail::configure(
                  "driver.compile=throw@1in20,b=delay:5,seed=42"),
              "");
    EXPECT_EQ(fail::configure("a=throw:permanent@once"), "");
    EXPECT_EQ(fail::configure("a=error@always"), "");

    // Each diagnostic names the offending clause.
    EXPECT_NE(fail::configure("nonsense"), "");
    EXPECT_NE(fail::configure("a=bogus-action"), "");
    EXPECT_NE(fail::configure("a=throw@1in0"), "");
    EXPECT_NE(fail::configure("a=throw@sometimes"), "");
    EXPECT_NE(fail::configure("a=delay:soon"), "");
    EXPECT_NE(fail::configure("seed=xyz"), "");

    // A failed configure installs nothing — the prior spec survives.
    ASSERT_EQ(fail::configure("keep=error"), "");
    EXPECT_NE(fail::configure("broken"), "");
    EXPECT_TRUE(fail::armed());
    EXPECT_TRUE(DVI_FAILPOINT_ERROR("keep"));

    fail::reset();
    EXPECT_FALSE(fail::armed());
    EXPECT_FALSE(DVI_FAILPOINT_ERROR("keep"));
}

TEST_F(ChaosTest, OnceFiresExactlyOnce)
{
    ASSERT_EQ(fail::configure("p=error@once"), "");
    EXPECT_TRUE(DVI_FAILPOINT_ERROR("p"));
    EXPECT_FALSE(DVI_FAILPOINT_ERROR("p"));
    EXPECT_FALSE(DVI_FAILPOINT_ERROR("p"));
    EXPECT_EQ(fail::fireCount("p"), 1u);
    EXPECT_EQ(fail::fireCount("no-such-site"), 0u);
}

TEST_F(ChaosTest, ThrowActionCarriesKindAndSite)
{
    ASSERT_EQ(fail::configure("p=throw:permanent"), "");
    try {
        DVI_FAILPOINT("p");
        FAIL() << "failpoint did not throw";
    } catch (const base::FaultInjected &f) {
        EXPECT_EQ(f.kind(), base::FaultKind::Permanent);
        EXPECT_EQ(f.site(), "p");
        EXPECT_NE(std::string(f.what()).find("'p'"),
                  std::string::npos);
    }

    // The error-style flavor must not unwind even for throw actions.
    ASSERT_EQ(fail::configure("q=throw"), "");
    EXPECT_TRUE(DVI_FAILPOINT_ERROR("q"));
}

TEST_F(ChaosTest, OneInNFiringIsDeterministicPerSeed)
{
    const auto pattern = [](const std::string &spec) {
        fail::reset();
        EXPECT_EQ(fail::configure(spec), "");
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i)
            fired.push_back(DVI_FAILPOINT_ERROR("p"));
        return fired;
    };

    const std::vector<bool> a = pattern("p=error@1in3,seed=7");
    const std::vector<bool> b = pattern("p=error@1in3,seed=7");
    EXPECT_EQ(a, b);  // same spec + seed -> identical hit pattern

    // ~1/3 of 64 hits fire: neither none nor all.
    const std::size_t fires =
        static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
    EXPECT_GT(fires, 0u);
    EXPECT_LT(fires, 64u);
}

// ------------------------------------------------- retry policy

TEST_F(ChaosTest, RetryBackoffIsDeterministicAndCapped)
{
    const driver::RetryPolicy p;  // base 10ms, cap 1000ms
    EXPECT_EQ(driver::retryBackoffMs(p, 1), 10u);
    EXPECT_EQ(driver::retryBackoffMs(p, 2), 20u);
    EXPECT_EQ(driver::retryBackoffMs(p, 3), 40u);
    EXPECT_EQ(driver::retryBackoffMs(p, 7), 640u);
    EXPECT_EQ(driver::retryBackoffMs(p, 8), 1000u);   // capped
    EXPECT_EQ(driver::retryBackoffMs(p, 63), 1000u);  // shift-safe
}

// ------------------------------------- campaign fault isolation

TEST_F(ChaosTest, TransientJobFaultRetriesToByteIdenticalReport)
{
    const driver::Campaign c = smallCampaign();
    driver::CampaignOptions copts;
    copts.jobs = 1;
    copts.retry.backoffBaseMs = 1;  // keep the test fast

    obs::TelemetrySink sink;
    std::vector<std::string> lines;
    sink.addLineObserver(
        [&lines](const std::string &l) { lines.push_back(l); });
    copts.telemetry = &sink;

    ASSERT_EQ(fail::configure("driver.job=throw@once"), "");
    const driver::CampaignReport faulted = c.run(copts);
    fail::reset();

    EXPECT_FALSE(faulted.degraded);
    unsigned retries = 0;
    for (const driver::JobResult &r : faulted.results) {
        EXPECT_FALSE(r.failed);
        retries += r.retries;
    }
    EXPECT_EQ(retries, 1u);

    bool sawRetry = false;
    for (const std::string &l : lines)
        sawRetry |= l.find("\"kind\": \"retry\"") != std::string::npos;
    EXPECT_TRUE(sawRetry);

    // The recovered report is byte-identical to a fault-free run:
    // retries are in-process bookkeeping, never serialized for
    // successful jobs.
    driver::CampaignOptions plain;
    plain.jobs = 1;
    EXPECT_EQ(faulted.toJson(), c.run(plain).toJson());
}

TEST_F(ChaosTest, TransientCompileFaultRecompilesAndRecovers)
{
    const driver::Campaign c = smallCampaign();
    driver::CampaignOptions copts;
    copts.jobs = 1;
    copts.retry.backoffBaseMs = 1;

    // The compile failpoint throws out of the cache's call_once, so
    // the once-flag stays unset and the retry recompiles.
    ASSERT_EQ(fail::configure("driver.compile=throw@once"), "");
    const driver::CampaignReport faulted = c.run(copts);
    fail::reset();

    EXPECT_FALSE(faulted.degraded);
    driver::CampaignOptions plain;
    plain.jobs = 1;
    EXPECT_EQ(faulted.toJson(), c.run(plain).toJson());
}

TEST_F(ChaosTest, PermanentJobFaultQuarantinesAndDegrades)
{
    const driver::Campaign c = smallCampaign();
    driver::CampaignOptions copts;
    copts.jobs = 1;

    obs::MetricRegistry metrics;
    copts.metrics = &metrics;
    obs::TelemetrySink sink;
    std::vector<std::string> lines;
    sink.addLineObserver(
        [&lines](const std::string &l) { lines.push_back(l); });
    copts.telemetry = &sink;

    ASSERT_EQ(fail::configure("driver.job=throw:permanent@once"), "");
    const driver::CampaignReport report = c.run(copts);
    fail::reset();

    // The campaign completed: one job quarantined, the rest intact.
    EXPECT_TRUE(report.degraded);
    EXPECT_FALSE(report.cancelled);
    std::size_t failedJobs = 0;
    for (const driver::JobResult &r : report.results) {
        if (!r.failed)
            continue;
        ++failedJobs;
        EXPECT_EQ(r.error.kind, base::FaultKind::Permanent);
        EXPECT_EQ(r.retries, 0u);  // permanent faults never retry
        EXPECT_NE(r.error.message.find("driver.job"),
                  std::string::npos);
    }
    EXPECT_EQ(failedJobs, 1u);
    EXPECT_EQ(counterValue(metrics, "campaign.quarantined"), 1u);
    EXPECT_EQ(counterValue(metrics, "campaign.retries"), 0u);

    // Every surviving job's numbers match a fault-free run exactly.
    driver::CampaignOptions plain;
    plain.jobs = 1;
    const driver::CampaignReport clean = c.run(plain);
    ASSERT_EQ(report.results.size(), clean.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        if (report.results[i].failed)
            continue;
        EXPECT_EQ(report.results[i].run.ipc, clean.results[i].run.ipc);
        EXPECT_EQ(report.results[i].textBytes,
                  clean.results[i].textBytes);
    }

    // The serialized report carries the degraded flag and the error
    // record, and the telemetry stream carries the error event.
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"permanent\""), std::string::npos);
    bool sawError = false;
    for (const std::string &l : lines)
        sawError |= l.find("\"kind\": \"error\"") != std::string::npos;
    EXPECT_TRUE(sawError);
}

TEST_F(ChaosTest, DegradedReportRoundTripsAsManifest)
{
    const driver::Campaign c = smallCampaign();
    driver::CampaignOptions copts;
    copts.jobs = 1;
    ASSERT_EQ(fail::configure("driver.job=throw:permanent@once"), "");
    const driver::CampaignReport report = c.run(copts);
    fail::reset();
    ASSERT_TRUE(report.degraded);

    // Reports load back as manifests (they embed their resolved
    // scenarios); a degraded report must too — failed jobs keep
    // their scenario record next to the error.
    sim::CampaignManifest m;
    const std::string err = sim::manifestFromJson(report.toJson(), m);
    EXPECT_EQ(err, "");
    EXPECT_EQ(m.scenarios.size(), report.results.size());
}

// ------------------------------------------- watchdog & budgets

/** A runner that never finishes on its own: it spins until the
 * scoped cancel flag (set by the campaign watchdog) is raised, then
 * unwinds with CancelledError exactly like the simulation loops. */
class SpinRunner : public sim::Runner
{
  public:
    std::string name() const override { return "spin"; }
    std::string
    description() const override
    {
        return "spins until cancelled (watchdog tests)";
    }

    sim::RunResult
    run(const sim::Scenario &, const comp::Executable &) const override
    {
        const std::atomic<bool> *cancel = sim::currentCancel();
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(20);
        while (!cancel ||
               !cancel->load(std::memory_order_relaxed)) {
            if (std::chrono::steady_clock::now() > deadline)
                throw std::runtime_error(
                    "spin runner: cancel never arrived");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        throw base::CancelledError("spin runner cancelled");
    }

    std::vector<std::string>
    metricNames() const override
    {
        return {};
    }
    void
    metricValues(const sim::RunResult &,
                 std::vector<sim::MetricValue> &out) const override
    {
        out.clear();
    }
};

void
registerSpinRunner()
{
    static const bool once = [] {
        sim::RunnerRegistry::instance().add(
            std::make_unique<SpinRunner>());
        return true;
    }();
    (void)once;
}

TEST_F(ChaosTest, WatchdogCancelsStuckJobAndReclaimsWorker)
{
    registerSpinRunner();

    driver::Campaign c("watchdog");
    sim::Scenario stuck;
    stuck.runner = "spin";
    stuck.workload = workload::BenchmarkId::Li;
    stuck.budget.maxInsts = 1000;
    stuck.budget.maxWallMs = 50;
    c.add(stuck);
    // A healthy job behind the stuck one proves the worker thread
    // survives the cancellation and keeps draining the campaign.
    c.add(timingScenario(workload::BenchmarkId::Li,
                         sim::presetNone(), 3000));

    driver::CampaignOptions copts;
    copts.jobs = 1;
    obs::MetricRegistry metrics;
    copts.metrics = &metrics;

    const driver::CampaignReport report = c.run(copts);

    EXPECT_TRUE(report.degraded);
    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_TRUE(report.results[0].failed);
    EXPECT_EQ(report.results[0].error.kind,
              base::FaultKind::BudgetExceeded);
    EXPECT_NE(report.results[0].error.message.find("deadline"),
              std::string::npos);
    EXPECT_EQ(report.results[0].retries, 0u);  // deadlines never retry
    EXPECT_FALSE(report.results[1].failed);
    EXPECT_GT(report.results[1].run.ipc, 0.0);
    EXPECT_EQ(gaugeValue(metrics, "campaign.watchdogFires"), 1u);
}

TEST_F(ChaosTest, HardInstructionDeadlineQuarantinesJob)
{
    driver::Campaign c("hard-deadline");
    sim::Scenario s = timingScenario(workload::BenchmarkId::Li,
                                     sim::presetNone(), 20000);
    s.budget.hardMaxInsts = 5000;
    c.add(s);

    driver::CampaignOptions copts;
    copts.jobs = 1;
    const driver::CampaignReport report = c.run(copts);

    EXPECT_TRUE(report.degraded);
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_TRUE(report.results[0].failed);
    EXPECT_EQ(report.results[0].error.kind,
              base::FaultKind::BudgetExceeded);
}

// ------------------------------------------------- other sites

TEST_F(ChaosTest, TelemetryWriteFaultDropsLineButKeepsObservers)
{
    // The write failpoint is error-style: the fwrite is skipped (and
    // counted) but line observers still run, so serve streams stay
    // gapless even when the backing file is chaos-degraded.
    const std::string path =
        ::testing::TempDir() + "chaos_telemetry.ndjson";
    ASSERT_EQ(fail::configure("obs.telemetry.write=error@once"), "");
    std::vector<std::string> lines;
    {
        std::unique_ptr<obs::TelemetrySink> sink =
            obs::TelemetrySink::open(path);
        sink->addLineObserver(
            [&lines](const std::string &l) { lines.push_back(l); });
        for (int i = 0; i < 2; ++i) {
            json::Value p = json::Value::object();
            p.set("level", "info");
            p.set("message", "chaos");
            sink->event("log", std::move(p));
        }
        EXPECT_EQ(sink->droppedWrites(), 1u);
    }
    EXPECT_EQ(lines.size(), 2u);  // observers saw every event

    // The file is short the dropped line.
    std::ifstream in(path);
    std::size_t fileLines = 0;
    for (std::string line; std::getline(in, line);)
        ++fileLines;
    EXPECT_EQ(fileLines, 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace dvi
