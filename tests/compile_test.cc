/**
 * @file
 * Compiler/emitter tests: prologue/epilogue structure, E-DVI
 * placement and policies, linking.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "isa/registers.hh"
#include "test_programs.hh"
#include "workload/benchmarks.hh"

namespace dvi
{
namespace comp
{
namespace
{

using isa::Instruction;
using isa::Opcode;

TEST(Compile, TinyProgramLinks)
{
    Executable exe = compile(testprog::sumProgram(10));
    EXPECT_GT(exe.code.size(), 0u);
    EXPECT_EQ(exe.procs.size(), 1u);
    EXPECT_EQ(exe.entry, exe.procs[0].entry);
    EXPECT_EQ(exe.textBytes(), exe.code.size() * 4);
    // main ends with halt somewhere.
    bool has_halt = false;
    for (const auto &inst : exe.code)
        has_halt |= inst.isHalt();
    EXPECT_TRUE(has_halt);
}

TEST(Compile, PrologueAndEpilogueStructure)
{
    Executable exe = compile(testprog::fig7Program());
    // callee: saves one callee-saved reg with live-store, saves ra
    // (it calls helper), restores in reverse with live-load, ret.
    const int ci = 3;
    const ProcInfo &pi = exe.procs[ci];
    const Instruction &first = exe.code[pi.entry];
    EXPECT_EQ(first.op, Opcode::Addi);  // sp adjust
    EXPECT_EQ(first.rd, isa::regSp);
    EXPECT_LT(first.imm, 0);

    const Instruction &save = exe.code[pi.entry + 1];
    ASSERT_TRUE(save.isSave());
    EXPECT_EQ(save.saveRestoreReg(), 16);  // s0 (spread policy)

    // ra save is a *plain* store (never eliminable).
    const Instruction &ra_save = exe.code[pi.entry + 2];
    EXPECT_EQ(ra_save.op, Opcode::Store);
    EXPECT_EQ(ra_save.rs2, isa::regRa);

    // Last instruction: ret; before it sp restore; before that the
    // live-load restore mirror of the save.
    const Instruction &last = exe.code[pi.end - 1];
    EXPECT_TRUE(last.isReturn());
    const Instruction &sp_restore = exe.code[pi.end - 2];
    EXPECT_EQ(sp_restore.rd, isa::regSp);
    EXPECT_GT(sp_restore.imm, 0);
    const Instruction &restore = exe.code[pi.end - 3];
    ASSERT_TRUE(restore.isRestore());
    EXPECT_EQ(restore.saveRestoreReg(), 16);
    // Save and restore use the same frame slot.
    EXPECT_EQ(restore.imm, save.imm);
}

TEST(Compile, LeafProcedureSkipsRaSave)
{
    Executable exe = compile(testprog::fig7Program());
    const ProcInfo &helper = exe.procs[4];
    for (int i = helper.entry; i < helper.end; ++i) {
        const Instruction &inst = exe.code[i];
        EXPECT_FALSE(inst.op == Opcode::Store &&
                     inst.rs2 == isa::regRa);
    }
}

TEST(Compile, EdviKillPlacedImmediatelyBeforeCall)
{
    Executable exe = compile(
        testprog::fig7Program(),
        CompileOptions{EdviPolicy::CallSites});
    // Every kill is immediately followed by a call.
    for (std::size_t i = 0; i < exe.code.size(); ++i) {
        if (exe.code[i].isKill()) {
            ASSERT_LT(i + 1, exe.code.size());
            EXPECT_TRUE(exe.code[i + 1].isCall())
                << "kill at " << i << " not followed by call";
        }
    }
    EXPECT_GT(exe.countKills(), 0u);
}

TEST(Compile, KillMasksAreCalleeSavedOnly)
{
    for (auto id : workload::allBenchmarks()) {
        Executable exe =
            compile(workload::generateBenchmark(id),
                    CompileOptions{EdviPolicy::CallSites});
        for (const auto &inst : exe.code) {
            if (inst.isKill()) {
                EXPECT_TRUE(inst.killMask()
                                .minus(isa::allocatableCalleeSaved())
                                .empty())
                    << workload::benchmarkName(id);
            }
        }
    }
}

TEST(Compile, NonePolicyEmitsNoKills)
{
    Executable exe = compile(testprog::fig7Program(),
                             CompileOptions{EdviPolicy::None});
    EXPECT_EQ(exe.countKills(), 0u);
}

TEST(Compile, DensePolicyEmitsAtLeastCallSiteKills)
{
    const prog::Module mod =
        workload::generateBenchmark(workload::BenchmarkId::Gcc);
    Executable calls =
        compile(mod, CompileOptions{EdviPolicy::CallSites});
    Executable dense =
        compile(mod, CompileOptions{EdviPolicy::Dense});
    EXPECT_GE(dense.countKills(), calls.countKills());
    EXPECT_GT(dense.countKills(), 0u);
}

TEST(Compile, BranchAndCallTargetsInRange)
{
    for (auto id : workload::allBenchmarks()) {
        Executable exe =
            compile(workload::generateBenchmark(id),
                    CompileOptions{EdviPolicy::CallSites});
        for (const auto &inst : exe.code) {
            if (inst.isCondBranch() || inst.op == Opcode::Jump ||
                inst.isCall()) {
                EXPECT_GE(inst.imm, 0);
                EXPECT_LT(inst.imm,
                          static_cast<std::int32_t>(
                              exe.code.size()));
            }
        }
    }
}

TEST(Compile, CallTargetsAreProcedureEntries)
{
    Executable exe = compile(testprog::factorialProgram(5));
    for (const auto &inst : exe.code) {
        if (inst.isCall()) {
            bool is_entry = false;
            for (const auto &pi : exe.procs)
                is_entry |= pi.entry == inst.imm;
            EXPECT_TRUE(is_entry);
        }
    }
}

TEST(Compile, ProcOfResolvesExtents)
{
    Executable exe = compile(testprog::fig7Program());
    for (std::size_t p = 0; p < exe.procs.size(); ++p) {
        EXPECT_EQ(exe.procOf(exe.procs[p].entry),
                  static_cast<int>(p));
        EXPECT_EQ(exe.procOf(exe.procs[p].end - 1),
                  static_cast<int>(p));
    }
    EXPECT_EQ(exe.procOf(-1), -1);
}

TEST(Compile, SaveRestoreCountsBalance)
{
    // Static live-stores equal static live-loads (every prologue
    // save has an epilogue restore).
    for (auto id : workload::allBenchmarks()) {
        Executable exe =
            compile(workload::generateBenchmark(id));
        std::uint64_t saves = 0, restores = 0;
        for (const auto &inst : exe.code) {
            saves += inst.isSave();
            restores += inst.isRestore();
        }
        EXPECT_EQ(saves, restores) << workload::benchmarkName(id);
    }
}

TEST(Compile, DisassembleProducesText)
{
    Executable exe = compile(testprog::sumProgram(3));
    const std::string text = exe.disassemble(0, 5);
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("0:"), std::string::npos);
}

TEST(CompileDeath, InvalidModulePanics)
{
    prog::Module bad;
    EXPECT_DEATH((void)compile(bad), "invalid module");
}

} // namespace
} // namespace comp
} // namespace dvi
