/**
 * @file
 * Unit tests for the paper's hardware structures: the LVM (§4.1),
 * the LVM-Stack (§5.2), and the DVI-extended renamer (§4).
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "base/rng.hh"
#include "base/test_seed.hh"
#include "compiler/compile.hh"
#include "core/lvm.hh"
#include "core/lvm_stack.hh"
#include "core/renamer.hh"
#include "isa/registers.hh"
#include "workload/generator.hh"

namespace dvi
{
namespace core
{
namespace
{

TEST(Lvm, StartsConservativelyLive)
{
    Lvm lvm;
    for (RegIndex r = 0; r < isa::numIntRegs; ++r)
        EXPECT_TRUE(lvm.isLive(r));
}

TEST(Lvm, KillAndDefine)
{
    Lvm lvm;
    lvm.kill(RegMask{8, 9});
    EXPECT_FALSE(lvm.isLive(8));
    EXPECT_FALSE(lvm.isLive(9));
    EXPECT_TRUE(lvm.isLive(10));
    lvm.define(8);
    EXPECT_TRUE(lvm.isLive(8));
}

TEST(Lvm, LiveCountWithinSubset)
{
    Lvm lvm;
    lvm.kill(isa::idviMask());
    EXPECT_EQ(lvm.liveCount(isa::idviMask()), 0u);
    EXPECT_EQ(lvm.liveCount(isa::calleeSavedMask()),
              isa::calleeSavedMask().count());
}

TEST(Lvm, MergeFromOnlyTouchesMaskedBits)
{
    // The return-time merge (§5.2 step 4): callee-saved bits come
    // from the popped snapshot, everything else keeps its current
    // value (the return value register must stay live!).
    Lvm lvm;
    lvm.kill(RegMask{16, 17, isa::regV0});
    RegMask snapshot = RegMask::firstN(isa::numIntRegs);  // all live
    lvm.mergeFrom(snapshot, isa::calleeSavedMask());
    EXPECT_TRUE(lvm.isLive(16));
    EXPECT_TRUE(lvm.isLive(17));
    EXPECT_FALSE(lvm.isLive(isa::regV0));  // untouched by merge

    // And the reverse: dead snapshot bits override live ones.
    Lvm lvm2;
    lvm2.mergeFrom(RegMask{}, isa::calleeSavedMask());
    EXPECT_FALSE(lvm2.isLive(16));
    EXPECT_TRUE(lvm2.isLive(8));
}

TEST(Lvm, SnapshotRestore)
{
    Lvm lvm;
    lvm.kill(RegMask{20});
    RegMask saved = lvm.snapshot();
    lvm.define(20);
    lvm.kill(RegMask{21});
    lvm.restore(saved);
    EXPECT_FALSE(lvm.isLive(20));
    EXPECT_TRUE(lvm.isLive(21));
}

TEST(LvmStack, LifoOrder)
{
    LvmStack stack(4);
    stack.push(RegMask{1});
    stack.push(RegMask{2});
    EXPECT_EQ(stack.top(), RegMask{2});
    EXPECT_EQ(stack.pop(), RegMask{2});
    EXPECT_EQ(stack.pop(), RegMask{1});
    EXPECT_TRUE(stack.empty());
}

TEST(LvmStack, UnderflowIsAllLive)
{
    LvmStack stack(4);
    EXPECT_EQ(stack.pop(), LvmStack::allLive());
    EXPECT_EQ(stack.top(), LvmStack::allLive());
    EXPECT_EQ(stack.underflows(), 1u);
}

TEST(LvmStack, OverflowDropsOldest)
{
    LvmStack stack(2);
    stack.push(RegMask{1});
    stack.push(RegMask{2});
    stack.push(RegMask{3});  // evicts {1}
    EXPECT_EQ(stack.overflows(), 1u);
    EXPECT_EQ(stack.pop(), RegMask{3});
    EXPECT_EQ(stack.pop(), RegMask{2});
    // The dropped frame's pop underflows to the conservative value.
    EXPECT_EQ(stack.pop(), LvmStack::allLive());
}

TEST(LvmStack, UnboundedDepthNeverOverflows)
{
    LvmStack stack(0);
    for (unsigned i = 0; i < 1000; ++i)
        stack.push(RegMask{static_cast<RegIndex>(i % 32)});
    EXPECT_EQ(stack.overflows(), 0u);
    EXPECT_EQ(stack.size(), 1000u);
}

TEST(LvmStack, CheckpointRestore)
{
    LvmStack stack(8);
    stack.push(RegMask{1});
    stack.push(RegMask{2});
    auto cp = stack.checkpoint();
    stack.pop();
    stack.push(RegMask{9});
    stack.restore(cp);
    EXPECT_EQ(stack.size(), 2u);
    EXPECT_EQ(stack.top(), RegMask{2});
}

TEST(LvmStack, DeepRecursionBeyondDepthIsConservativeNeverWrong)
{
    // The paper's context-switch/deep-recursion discussion (§5.2,
    // §6): a call chain deeper than the buffer wraps, losing the
    // *oldest* frames. Pops of surviving frames return exactly what
    // was pushed; pops of lost frames underflow to all-live — which
    // only disables optimization (a restore executes needlessly),
    // never correctness (no restore is wrongly squashed).
    LvmStack stack(16);
    std::vector<RegMask> pushed;
    for (unsigned depth = 0; depth < 40; ++depth) {
        RegMask snap{static_cast<RegIndex>(depth % 32),
                     static_cast<RegIndex>((depth * 7) % 32)};
        pushed.push_back(snap);
        stack.push(snap);
    }
    EXPECT_EQ(stack.overflows(), 40u - 16u);
    EXPECT_EQ(stack.size(), 16u);

    // Unwind: the newest 16 frames are exact...
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(stack.pop(), pushed[39 - i]);
    // ...every deeper frame is the conservative all-live mask, a
    // superset of whatever was pushed.
    for (unsigned i = 16; i < 40; ++i) {
        const RegMask got = stack.pop();
        EXPECT_EQ(got, LvmStack::allLive());
        EXPECT_EQ(got & pushed[39 - i], pushed[39 - i]);
    }
    EXPECT_EQ(stack.underflows(), 24u);
}

TEST(LvmStack, CheckpointRestoreAcrossOverflow)
{
    LvmStack stack(4);
    for (unsigned i = 0; i < 6; ++i)
        stack.push(RegMask{static_cast<RegIndex>(i)});
    const auto cp = stack.checkpoint();
    EXPECT_EQ(stack.size(), 4u);
    stack.pop();
    stack.pop();
    stack.push(RegMask{31});
    stack.restore(cp);
    EXPECT_EQ(stack.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(stack.pop(),
                  RegMask{static_cast<RegIndex>(5 - i)});
}

TEST(LvmStack, EmulatedDeepRecursionOverflowsBoundedStack)
{
    // End-to-end twin of the unit tests above: a recursion-heavy
    // workload deeper than the hardware stack. The bounded oracle
    // must overflow (or underflow) yet stay sound — zero dead
    // reads — and never squash more restores than the unbounded
    // oracle.
    workload::GeneratorParams params;
    params.seed = 77;
    params.numProcs = 4;
    params.recursionDepth = 40;  // well past the 8-entry stack
    params.mainIters = 2;
    const prog::Module mod = workload::generate(params);
    const comp::Executable exe = comp::compile(
        mod, comp::CompileOptions{comp::EdviPolicy::CallSites});

    arch::EmulatorOptions bounded;
    bounded.lvmStackDepth = 8;
    arch::Emulator b(exe, bounded);
    b.run(400000);

    arch::EmulatorOptions unbounded;
    unbounded.lvmStackDepth = 0;
    arch::Emulator u(exe, unbounded);
    u.run(400000);

    EXPECT_GT(b.stats().maxCallDepth, 8u);
    EXPECT_GT(b.lvmStack().overflows() + b.lvmStack().underflows(),
              0u);
    EXPECT_EQ(u.lvmStack().overflows(), 0u);
    EXPECT_EQ(b.stats().deadReads, 0u);
    EXPECT_EQ(u.stats().deadReads, 0u);
    // Losing frames only loses optimization.
    EXPECT_LE(b.stats().restoreElimOracle,
              u.stats().restoreElimOracle);
    // Both observe the identical save stream.
    EXPECT_EQ(b.stats().saves, u.stats().saves);
    EXPECT_EQ(b.stats().restores, u.stats().restores);
}

TEST(LvmStack, CountsPushesAndPops)
{
    LvmStack stack(4);
    stack.push(RegMask{});
    stack.pop();
    stack.pop();
    EXPECT_EQ(stack.pushes(), 1u);
    EXPECT_EQ(stack.pops(), 2u);
    EXPECT_EQ(stack.underflows(), 1u);
}

TEST(Renamer, InitialStateMapsArchitecturalRegisters)
{
    Renamer r(40);
    EXPECT_EQ(r.mappedCount(), isa::numIntRegs);
    EXPECT_EQ(r.freeCount(), 40u - isa::numIntRegs);
    for (RegIndex a = 0; a < isa::numIntRegs; ++a)
        EXPECT_EQ(r.lookup(a), static_cast<PhysRegIndex>(a));
    EXPECT_TRUE(r.unmappedArchRegs().empty());
    r.checkConservation(0);
}

TEST(Renamer, RenameTracksPreviousMapping)
{
    Renamer r(40);
    auto rd = r.renameDest(5);
    EXPECT_EQ(rd.prevPreg, 5);
    EXPECT_EQ(r.lookup(5), rd.newPreg);
    EXPECT_NE(rd.newPreg, 5);
    // Commit: free the previous mapping.
    r.freePhysReg(rd.prevPreg);
    r.checkConservation(0);
}

TEST(Renamer, KillUnmapsAndNextDefineHasNoPrev)
{
    // The Fig. 4 sequence: kill r1, later redefine r1. The kill's
    // commit frees the old mapping; the redefinition frees nothing.
    Renamer r(40);
    PhysRegIndex prev = r.killMapping(1);
    EXPECT_EQ(prev, 1);
    EXPECT_EQ(r.lookup(1), invalidPhysReg);
    EXPECT_TRUE(r.unmappedArchRegs().test(1));
    r.freePhysReg(prev);  // kill commits

    auto rd = r.renameDest(1);
    EXPECT_EQ(rd.prevPreg, invalidPhysReg);  // nothing to free later
    EXPECT_EQ(r.lookup(1), rd.newPreg);
    r.checkConservation(0);
}

TEST(Renamer, KillOfUnmappedReturnsInvalid)
{
    Renamer r(40);
    r.freePhysReg(r.killMapping(3));
    EXPECT_EQ(r.killMapping(3), invalidPhysReg);
}

TEST(Renamer, ExhaustsFreeList)
{
    Renamer r(34);  // 2 spare
    EXPECT_TRUE(r.hasFree());
    auto a = r.renameDest(1);
    auto b = r.renameDest(2);
    EXPECT_FALSE(r.hasFree());
    // Commits release them again.
    r.freePhysReg(a.prevPreg);
    r.freePhysReg(b.prevPreg);
    EXPECT_EQ(r.freeCount(), 2u);
    r.checkConservation(0);
}

TEST(Renamer, EarlyReclamationShrinksMappedState)
{
    // DVI's point (§4): killing registers lets the file hold fewer
    // live mappings than architectural registers.
    Renamer r(36);
    isa::idviMask().forEach([&](RegIndex a) {
        PhysRegIndex p = r.killMapping(a);
        ASSERT_NE(p, invalidPhysReg);
        r.freePhysReg(p);
    });
    EXPECT_EQ(r.mappedCount(),
              isa::numIntRegs - isa::idviMask().count());
    EXPECT_EQ(r.freeCount(), 4u + isa::idviMask().count());
    r.checkConservation(0);
}

TEST(Renamer, CheckpointRestoreEqualsSavedState)
{
    Renamer r(48);
    Rng rng(77);
    // Random warm-up.
    std::vector<PhysRegIndex> pending;
    for (int i = 0; i < 10; ++i) {
        auto rd =
            r.renameDest(static_cast<RegIndex>(rng.range(1, 31)));
        if (rd.prevPreg != invalidPhysReg)
            pending.push_back(rd.prevPreg);
    }
    auto cp = r.checkpoint();
    std::vector<PhysRegIndex> before;
    for (RegIndex a = 0; a < isa::numIntRegs; ++a)
        before.push_back(r.lookup(a));
    const auto free_before = r.freeCount();

    // Speculative wrong-path work...
    for (int i = 0; i < 6 && r.hasFree(); ++i)
        r.renameDest(static_cast<RegIndex>(rng.range(1, 31)));
    r.killMapping(16);

    // ...recovered.
    r.restore(cp);
    for (RegIndex a = 0; a < isa::numIntRegs; ++a)
        EXPECT_EQ(r.lookup(a), before[a]) << int(a);
    EXPECT_EQ(r.freeCount(), free_before);
    r.checkConservation(pending.size());
}

TEST(RenamerDeath, DoubleFreePanics)
{
    Renamer r(40);
    auto rd = r.renameDest(4);
    r.freePhysReg(rd.prevPreg);
    EXPECT_DEATH(r.freePhysReg(rd.prevPreg), "double free");
}

TEST(RenamerDeath, FreeWhileMappedPanicsEvenAfterRestore)
{
    // The free-while-mapped check runs against the O(1) isMapped
    // flags, which restore() must rebuild from the checkpointed map
    // — not leave cleared.
    Renamer r(40);
    const auto rd = r.renameDest(4);
    const auto cp = r.checkpoint();
    r.renameDest(5);  // speculative work
    r.restore(cp);
    EXPECT_DEATH(r.freePhysReg(rd.newPreg), "still mapped");
}

TEST(RenamerDeath, FreeingMappedRegisterPanics)
{
    Renamer r(40);
    EXPECT_DEATH(r.freePhysReg(5), "still mapped");
}

TEST(RenamerDeath, RenameWithEmptyFreeListPanics)
{
    Renamer r(33);
    r.renameDest(1);
    EXPECT_DEATH(r.renameDest(2), "empty free list");
}

TEST(RenamerDeath, TooSmallFileIsFatal)
{
    EXPECT_DEATH(Renamer r(32), "architectural state");
}

TEST(RenamerDeath, ConservationViolationDetected)
{
    Renamer r(40);
    (void)r.renameDest(7);  // one preg held by "in-flight" inst
    EXPECT_DEATH(r.checkConservation(0), "conservation");
}

/**
 * Property: a random interleaving of rename/kill/commit operations
 * conserves physical registers at every step.
 */
class RenamerPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RenamerPropertyTest, RandomOpsConserveRegisters)
{
    // Centralized seeding: DVI_TEST_SEED re-bases the whole family
    // deterministically, and the log line makes any failure
    // replayable.
    Rng rng(mixSeed(
        testSeed(1, "RenamerPropertyTest"),
        static_cast<std::uint64_t>(GetParam())));
    const unsigned nphys = 34 + static_cast<unsigned>(rng.below(60));
    Renamer r(nphys);
    std::vector<PhysRegIndex> pending;

    for (int step = 0; step < 3000; ++step) {
        const double roll = rng.uniform();
        if (roll < 0.5 && r.hasFree()) {
            auto rd = r.renameDest(
                static_cast<RegIndex>(rng.range(1, 31)));
            if (rd.prevPreg != invalidPhysReg)
                pending.push_back(rd.prevPreg);
        } else if (roll < 0.7) {
            PhysRegIndex p = r.killMapping(
                static_cast<RegIndex>(rng.range(1, 31)));
            if (p != invalidPhysReg)
                pending.push_back(p);
        } else if (!pending.empty()) {
            // Commit the oldest pending free.
            r.freePhysReg(pending.front());
            pending.erase(pending.begin());
        }
        r.checkConservation(pending.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenamerPropertyTest,
                         ::testing::Range(1, 13));

} // namespace
} // namespace core
} // namespace dvi
