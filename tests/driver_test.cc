/**
 * @file
 * Tests for the campaign driver: compile-once executable cache,
 * job kinds, deterministic report emission, and the headline
 * guarantee that a parallel campaign is byte-identical to a serial
 * one.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "driver/campaign.hh"
#include "driver/figures.hh"
#include "driver/report.hh"

namespace dvi
{
namespace
{

/** A small mixed-kind campaign that runs in well under a second. */
driver::Campaign
smallCampaign(std::uint64_t insts = 5000)
{
    driver::Campaign c("test-campaign");
    for (auto id :
         {workload::BenchmarkId::Li, workload::BenchmarkId::Perl}) {
        for (harness::DviMode mode : harness::allDviModes()) {
            uarch::CoreConfig cfg;
            cfg.dvi = harness::dviConfigFor(mode);
            cfg.maxInsts = insts;
            c.addTimingJob(id, mode, cfg);
        }
        c.addOracleJob(id, harness::DviMode::Full,
                       arch::EmulatorOptions{}, insts, "oracle");
        os::SchedulerOptions sched;
        sched.quantum = 1000;
        sched.maxTotalInsts = insts;
        c.addSwitchJob(id, harness::DviMode::Full,
                       arch::EmulatorOptions{}, sched, "switch");
    }
    return c;
}

TEST(ExecutableCache, CompilesOnceAndShares)
{
    driver::ExecutableCache cache;
    const auto a = cache.get(workload::BenchmarkId::Li);
    const auto b = cache.get(workload::BenchmarkId::Li);
    ASSERT_TRUE(a);
    EXPECT_EQ(a.get(), b.get());  // same object, not a recompile
    EXPECT_EQ(cache.size(), 1u);

    const auto c = cache.get(workload::BenchmarkId::Go);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ExecutableCache, SafeUnderConcurrentGet)
{
    driver::ExecutableCache cache;
    driver::ThreadPool pool(4);
    std::atomic<const harness::BuiltBenchmark *> seen{nullptr};
    std::atomic<int> mismatches{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&] {
            const auto built = cache.get(workload::BenchmarkId::Gcc);
            const harness::BuiltBenchmark *expected = nullptr;
            if (!seen.compare_exchange_strong(expected, built.get()) &&
                expected != built.get())
                ++mismatches;
        });
    }
    pool.wait();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Job, SeedIsDeterministicAndDistinct)
{
    EXPECT_EQ(driver::jobSeed(0), driver::jobSeed(0));
    EXPECT_NE(driver::jobSeed(0), driver::jobSeed(1));
    EXPECT_NE(driver::jobSeed(1), driver::jobSeed(2));
}

TEST(Job, KindsProduceTheirStats)
{
    driver::ExecutableCache cache;
    driver::JobSpec spec;
    spec.bench = workload::BenchmarkId::Li;

    spec.kind = driver::JobKind::Timing;
    spec.mode = harness::DviMode::Full;
    spec.cfg.dvi = uarch::DviConfig::full();
    spec.cfg.maxInsts = 3000;
    driver::JobResult timing = driver::runJob(spec, cache);
    EXPECT_GT(timing.core.cycles, 0u);
    EXPECT_GT(timing.ipc, 0.0);
    EXPECT_GT(timing.textBytesPlain, 0u);
    EXPECT_GT(timing.textBytesEdvi, timing.textBytesPlain);

    spec.kind = driver::JobKind::Oracle;
    spec.maxInsts = 3000;
    driver::JobResult oracle = driver::runJob(spec, cache);
    EXPECT_GT(oracle.oracle.insts, 0u);
    EXPECT_EQ(oracle.core.cycles, 0u);

    spec.kind = driver::JobKind::Switch;
    spec.sched.quantum = 500;
    spec.sched.maxTotalInsts = 3000;
    driver::JobResult sw = driver::runJob(spec, cache);
    EXPECT_GT(sw.sw.contextSwitches, 0u);
}

TEST(Campaign, ResultsOrderedByJobIndex)
{
    const driver::Campaign c = smallCampaign();
    const driver::CampaignReport rep =
        c.run(driver::CampaignOptions{4});
    ASSERT_EQ(rep.results.size(), c.size());
    for (std::size_t i = 0; i < rep.results.size(); ++i) {
        EXPECT_EQ(rep.results[i].spec.index, i);
        EXPECT_EQ(rep.results[i].spec.bench, c.jobs()[i].bench);
        EXPECT_EQ(rep.results[i].spec.variant, c.jobs()[i].variant);
    }
}

TEST(Campaign, ParallelReportIsByteIdenticalToSerial)
{
    const driver::Campaign c = smallCampaign();

    const driver::CampaignReport serial =
        c.run(driver::CampaignOptions{1});
    const driver::CampaignReport parallel =
        c.run(driver::CampaignOptions{8});

    EXPECT_EQ(serial.toJson(), parallel.toJson());
    EXPECT_EQ(serial.toCsv(), parallel.toCsv());
    // And re-running serially is reproducible, not just consistent.
    EXPECT_EQ(serial.toJson(),
              c.run(driver::CampaignOptions{1}).toJson());
}

TEST(Campaign, FigureCampaignParallelMatchesSerial)
{
    // The acceptance-criterion shape at a test-sized budget:
    // figure 10's grid with 1 worker vs. 8 workers.
    const driver::Campaign c =
        driver::buildFigureCampaign(10, 4000);
    EXPECT_EQ(c.size(),
              3 * workload::saveRestoreBenchmarks().size());
    const std::string serial =
        c.run(driver::CampaignOptions{1}).toJson();
    const std::string parallel =
        c.run(driver::CampaignOptions{8}).toJson();
    EXPECT_EQ(serial, parallel);
}

TEST(Report, JsonIsWellFormedEnough)
{
    const driver::Campaign c = smallCampaign(2000);
    const std::string json =
        c.run(driver::CampaignOptions{2}).toJson();
    EXPECT_NE(json.find("\"campaign\": \"test-campaign\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"timing\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"oracle\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"switch\""), std::string::npos);
    // Balanced braces and brackets.
    long depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, Escaping)
{
    EXPECT_EQ(driver::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(driver::jsonNumber(0.5), "0.5");
    EXPECT_EQ(driver::jsonNumber(0.0), "0");
}

TEST(Report, FormatParse)
{
    EXPECT_EQ(driver::parseReportFormat("json"),
              driver::ReportFormat::Json);
    EXPECT_EQ(driver::parseReportFormat("csv"),
              driver::ReportFormat::Csv);
}

TEST(Figures, SupportedSetAndBudgets)
{
    for (int fig : driver::supportedFigures()) {
        EXPECT_TRUE(driver::figureSupported(fig));
        EXPECT_FALSE(driver::figureDescription(fig).empty());
        EXPECT_GT(driver::figureDefaultInsts(fig), 0u);
    }
    EXPECT_FALSE(driver::figureSupported(4));
    EXPECT_FALSE(driver::figureSupported(0));
}

} // namespace
} // namespace dvi
