/**
 * @file
 * Tests for the campaign driver: compile-once executable cache,
 * runner dispatch, deterministic report emission, and the headline
 * guarantee that a parallel campaign is byte-identical to a serial
 * one.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "driver/campaign.hh"
#include "driver/figures.hh"
#include "driver/report.hh"
#include "driver/scenario_registry.hh"
#include "obs/telemetry.hh"

namespace dvi
{
namespace
{

sim::Scenario
timingScenario(workload::BenchmarkId id, const sim::DviPreset &preset,
               std::uint64_t insts)
{
    sim::Scenario s;
    s.runner = "timing";
    s.workload = id;
    s.budget.maxInsts = insts;
    sim::applyPreset(s, preset);
    return s;
}

/** A small mixed-runner campaign that runs in well under a second. */
driver::Campaign
smallCampaign(std::uint64_t insts = 5000)
{
    driver::Campaign c("test-campaign");
    for (auto id :
         {workload::BenchmarkId::Li, workload::BenchmarkId::Perl}) {
        for (const sim::DviPreset &preset : sim::paperPresets())
            c.add(timingScenario(id, preset, insts));

        sim::Scenario oracle;
        oracle.runner = "oracle";
        oracle.workload = id;
        oracle.budget.maxInsts = insts;
        sim::applyPreset(oracle, sim::presetFull());
        oracle.label = "oracle";
        c.add(oracle);

        sim::Scenario sw = oracle;
        sw.runner = "switch";
        sw.budget.quantum = 1000;
        sw.label = "switch";
        c.add(sw);
    }
    return c;
}

TEST(ExecutableCache, CompilesOncePerPolicyAndShares)
{
    driver::ExecutableCache cache;
    const auto a = cache.get(workload::BenchmarkId::Li,
                             comp::EdviPolicy::CallSites);
    const auto b = cache.get(workload::BenchmarkId::Li,
                             comp::EdviPolicy::CallSites);
    ASSERT_TRUE(a);
    EXPECT_EQ(a.get(), b.get());  // same object, not a recompile
    EXPECT_EQ(cache.size(), 1u);

    // A different policy of the same benchmark is a distinct entry.
    const auto c = cache.get(workload::BenchmarkId::Li,
                             comp::EdviPolicy::None);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_GT(a->textBytes(), c->textBytes());  // kills cost bytes

    const auto d = cache.get(workload::BenchmarkId::Go,
                             comp::EdviPolicy::CallSites);
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(cache.size(), 3u);
}

TEST(ExecutableCache, SafeUnderConcurrentGet)
{
    driver::ExecutableCache cache;
    driver::ThreadPool pool(4);
    std::atomic<const comp::Executable *> seen{nullptr};
    std::atomic<int> mismatches{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&] {
            const auto exe = cache.get(workload::BenchmarkId::Gcc,
                                       comp::EdviPolicy::CallSites);
            const comp::Executable *expected = nullptr;
            if (!seen.compare_exchange_strong(expected, exe.get()) &&
                expected != exe.get())
                ++mismatches;
        });
    }
    pool.wait();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Job, SeedIsDeterministicAndDistinct)
{
    EXPECT_EQ(driver::jobSeed(0), driver::jobSeed(0));
    EXPECT_NE(driver::jobSeed(0), driver::jobSeed(1));
    EXPECT_NE(driver::jobSeed(1), driver::jobSeed(2));
}

TEST(Job, RunnersProduceTheirStats)
{
    driver::ExecutableCache cache;
    driver::JobSpec spec;
    spec.scenario = timingScenario(workload::BenchmarkId::Li,
                                   sim::presetFull(), 3000);

    driver::JobResult timing = driver::runJob(spec, cache);
    EXPECT_GT(timing.run.core.cycles, 0u);
    EXPECT_GT(timing.run.ipc, 0.0);
    EXPECT_GT(timing.textBytes, 0u);

    spec.scenario.runner = "oracle";
    driver::JobResult oracle = driver::runJob(spec, cache);
    EXPECT_GT(oracle.run.oracle.insts, 0u);
    EXPECT_EQ(oracle.run.core.cycles, 0u);

    spec.scenario.runner = "switch";
    spec.scenario.budget.quantum = 500;
    driver::JobResult sw = driver::runJob(spec, cache);
    EXPECT_GT(sw.run.sw.contextSwitches, 0u);
}

TEST(Campaign, ResultsOrderedByJobIndex)
{
    const driver::Campaign c = smallCampaign();
    const driver::CampaignReport rep =
        c.run(driver::CampaignOptions{4});
    ASSERT_EQ(rep.results.size(), c.size());
    for (std::size_t i = 0; i < rep.results.size(); ++i) {
        EXPECT_EQ(rep.results[i].spec.index, i);
        EXPECT_EQ(rep.results[i].spec.scenario.workload,
                  c.jobs()[i].scenario.workload);
        EXPECT_EQ(rep.results[i].spec.scenario.label,
                  c.jobs()[i].scenario.label);
    }
}

TEST(Campaign, ParallelReportIsByteIdenticalToSerial)
{
    const driver::Campaign c = smallCampaign();

    const driver::CampaignReport serial =
        c.run(driver::CampaignOptions{1});
    const driver::CampaignReport parallel =
        c.run(driver::CampaignOptions{8});

    EXPECT_EQ(serial.toJson(), parallel.toJson());
    EXPECT_EQ(serial.toCsv(), parallel.toCsv());
    // And re-running serially is reproducible, not just consistent.
    EXPECT_EQ(serial.toJson(),
              c.run(driver::CampaignOptions{1}).toJson());
}

TEST(Campaign, FigureScenarioParallelMatchesSerial)
{
    // The acceptance-criterion shape at a test-sized budget:
    // figure 10's grid with 1 worker vs. 8 workers.
    const driver::Campaign c =
        driver::scenarioFor("fig10").build(4000);
    EXPECT_EQ(c.size(),
              3 * workload::saveRestoreBenchmarks().size());
    const std::string serial =
        c.run(driver::CampaignOptions{1}).toJson();
    const std::string parallel =
        c.run(driver::CampaignOptions{8}).toJson();
    EXPECT_EQ(serial, parallel);
}

TEST(Campaign, CancelBeforeRunSkipsEveryJob)
{
    const driver::Campaign c = smallCampaign(2000);
    std::atomic<bool> cancel{true};  // raised before run() starts
    driver::CampaignOptions copts;
    copts.jobs = 2;
    copts.cancel = &cancel;

    const driver::CampaignReport rep = c.run(copts);
    EXPECT_TRUE(rep.cancelled);
    ASSERT_EQ(rep.results.size(), c.size());
    // No job ran: every result slot is default-constructed.
    for (const driver::JobResult &r : rep.results) {
        EXPECT_EQ(r.run.core.cycles, 0u);
        EXPECT_EQ(r.run.oracle.insts, 0u);
        EXPECT_EQ(r.textBytes, 0u);
    }
}

TEST(Campaign, CancelMidRunDrainsInFlightJobsOnly)
{
    const driver::Campaign c = smallCampaign(2000);
    std::atomic<bool> cancel{false};

    // Raise the flag from the telemetry stream after the first job
    // finishes — the cooperative contract says jobs already started
    // drain normally and the rest are skipped.
    obs::TelemetrySink sink;
    sink.addObserver([&cancel](const obs::Event &e) {
        if (std::string(e.kind) == "job-end")
            cancel.store(true);
    });

    driver::CampaignOptions copts;
    copts.jobs = 1;  // serial: at most one job in flight at cancel
    copts.telemetry = &sink;
    copts.cancel = &cancel;

    const driver::CampaignReport rep = c.run(copts);
    EXPECT_TRUE(rep.cancelled);
    ASSERT_EQ(rep.results.size(), c.size());

    std::size_t completed = 0;
    for (const driver::JobResult &r : rep.results)
        if (r.textBytes > 0)
            ++completed;
    EXPECT_GE(completed, 1u);          // the in-flight job drained
    EXPECT_LT(completed, c.size());    // the tail was skipped
}

TEST(Campaign, UncancelledRunReportsCancelledFalse)
{
    const driver::Campaign c = smallCampaign(2000);
    std::atomic<bool> cancel{false};
    driver::CampaignOptions copts;
    copts.jobs = 2;
    copts.cancel = &cancel;
    EXPECT_FALSE(c.run(copts).cancelled);
    EXPECT_FALSE(c.run(driver::CampaignOptions{2}).cancelled);
}

TEST(Report, JsonIsWellFormedEnough)
{
    const driver::Campaign c = smallCampaign(2000);
    const std::string json =
        c.run(driver::CampaignOptions{2}).toJson();
    EXPECT_NE(json.find("\"campaign\": \"test-campaign\""),
              std::string::npos);
    EXPECT_NE(json.find("\"runner\": \"timing\""), std::string::npos);
    EXPECT_NE(json.find("\"runner\": \"oracle\""), std::string::npos);
    EXPECT_NE(json.find("\"runner\": \"switch\""), std::string::npos);
    EXPECT_NE(json.find("\"preset\": \"idvi\""), std::string::npos);
    // Balanced braces and brackets.
    long depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, FormatParse)
{
    EXPECT_EQ(driver::parseReportFormat("json"),
              driver::ReportFormat::Json);
    EXPECT_EQ(driver::parseReportFormat("csv"),
              driver::ReportFormat::Csv);
}

TEST(Figures, EverySupportedFigureIsRegistered)
{
    for (int fig : driver::supportedFigures()) {
        EXPECT_TRUE(driver::figureSupported(fig));
        const std::string name = driver::figureScenarioName(fig);
        ASSERT_FALSE(name.empty());
        const driver::RegisteredScenario *s =
            driver::ScenarioRegistry::instance().find(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_FALSE(s->description.empty());
        EXPECT_GT(s->defaultInsts, 0u);
    }
    EXPECT_FALSE(driver::figureSupported(4));
    EXPECT_FALSE(driver::figureSupported(0));
    EXPECT_EQ(driver::figureScenarioName(4), "");
}

} // namespace
} // namespace dvi
