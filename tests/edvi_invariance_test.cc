/**
 * @file
 * The central correctness properties of DVI (§7 of the paper):
 *
 *  1. E-DVI never changes architectural results — binaries with and
 *     without kill annotations execute the same program-order
 *     instruction stream (modulo the kills themselves) and produce
 *     identical results.
 *  2. E-DVI is *sound*: no executed instruction ever reads a
 *     register the liveness oracle believes dead ("Errors in E-DVI
 *     should be considered compiler errors").
 *  3. The binary rewriter's E-DVI is equivalent to the compiler's.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "compiler/compile.hh"
#include "compiler/machine_liveness.hh"
#include "compiler/rewriter.hh"
#include "workload/benchmarks.hh"

namespace dvi
{
namespace
{

constexpr std::uint64_t runLen = 60000;

class EdviInvarianceTest
    : public ::testing::TestWithParam<workload::BenchmarkId>
{
  protected:
    void
    SetUp() override
    {
        mod = workload::generateBenchmark(GetParam());
        plain = comp::compile(
            mod, comp::CompileOptions{comp::EdviPolicy::None});
        edvi = comp::compile(
            mod, comp::CompileOptions{comp::EdviPolicy::CallSites});
    }

    prog::Module mod;
    comp::Executable plain;
    comp::Executable edvi;
};

TEST_P(EdviInvarianceTest, LockstepExecutionMatches)
{
    arch::Emulator a(plain);
    arch::Emulator b(edvi);
    arch::TraceRecord ta, tb;
    for (std::uint64_t n = 0; n < runLen; ++n) {
        bool alive_a = a.step(&ta);
        // Skip kill annotations on the E-DVI side.
        bool alive_b = b.step(&tb);
        while (alive_b && tb.inst.isKill())
            alive_b = b.step(&tb);
        ASSERT_EQ(alive_a, alive_b) << "at instruction " << n;
        if (!alive_a)
            break;
        ASSERT_EQ(ta.inst.op, tb.inst.op) << "at instruction " << n;
        ASSERT_EQ(ta.effAddr == 0, tb.effAddr == 0);
        ASSERT_EQ(ta.taken, tb.taken) << "at instruction " << n;
    }
}

TEST_P(EdviInvarianceTest, ResultHashMatchesWhenRunToCompletion)
{
    // Use a shortened workload so both run to the halt.
    workload::GeneratorParams params =
        workload::benchmarkParams(GetParam());
    params.mainIters = 1;
    const prog::Module small = workload::generate(params);
    comp::Executable p = comp::compile(
        small, comp::CompileOptions{comp::EdviPolicy::None});
    comp::Executable e = comp::compile(
        small, comp::CompileOptions{comp::EdviPolicy::CallSites});
    comp::Executable d = comp::compile(
        small, comp::CompileOptions{comp::EdviPolicy::Dense});

    arch::Emulator ep(p), ee(e), ed(d);
    EXPECT_GT(ep.run(200000000), 0u);
    ee.run(200000000);
    ed.run(200000000);
    ASSERT_TRUE(ep.halted());
    ASSERT_TRUE(ee.halted());
    ASSERT_TRUE(ed.halted());
    EXPECT_EQ(ep.resultHash(), ee.resultHash());
    EXPECT_EQ(ep.resultHash(), ed.resultHash());
}

TEST_P(EdviInvarianceTest, CompilerEdviIsSound)
{
    arch::EmulatorOptions opts;
    opts.strictDeadReads = true;  // panics on violation
    arch::Emulator emu(edvi, opts);
    emu.run(runLen);
    EXPECT_EQ(emu.stats().deadReads, 0u);
}

TEST_P(EdviInvarianceTest, DenseEdviIsSound)
{
    comp::Executable dense = comp::compile(
        mod, comp::CompileOptions{comp::EdviPolicy::Dense});
    arch::EmulatorOptions opts;
    opts.strictDeadReads = true;
    arch::Emulator emu(dense, opts);
    emu.run(runLen);
    EXPECT_EQ(emu.stats().deadReads, 0u);
}

TEST_P(EdviInvarianceTest, RewriterEdviIsSound)
{
    comp::RewriteStats rs;
    comp::Executable rewritten = comp::insertEdvi(plain, &rs);
    EXPECT_GT(rs.callSitesSeen, 0u);
    arch::EmulatorOptions opts;
    opts.strictDeadReads = true;
    arch::Emulator emu(rewritten, opts);
    emu.run(runLen);
    EXPECT_EQ(emu.stats().deadReads, 0u);
}

TEST_P(EdviInvarianceTest, RewriterPreservesResults)
{
    workload::GeneratorParams params =
        workload::benchmarkParams(GetParam());
    params.mainIters = 1;
    const prog::Module small = workload::generate(params);
    comp::Executable p = comp::compile(
        small, comp::CompileOptions{comp::EdviPolicy::None});
    comp::Executable rewritten = comp::insertEdvi(p);

    arch::Emulator a(p), b(rewritten);
    a.run(200000000);
    b.run(200000000);
    ASSERT_TRUE(a.halted());
    ASSERT_TRUE(b.halted());
    EXPECT_EQ(a.resultHash(), b.resultHash());
}

TEST_P(EdviInvarianceTest, RewriterRelocatesControlFlow)
{
    comp::Executable rewritten = comp::insertEdvi(plain);
    EXPECT_GT(rewritten.code.size(), plain.code.size());
    // All control targets valid and targeting the same opcode kind
    // as the original.
    for (const auto &inst : rewritten.code) {
        if (inst.isCondBranch() || inst.op == isa::Opcode::Jump ||
            inst.isCall()) {
            ASSERT_GE(inst.imm, 0);
            ASSERT_LT(inst.imm, static_cast<std::int32_t>(
                                    rewritten.code.size()));
        }
        if (inst.isCall()) {
            bool entry = false;
            for (const auto &pi : rewritten.procs)
                entry |= pi.entry == inst.imm;
            EXPECT_TRUE(entry);
        }
    }
}

TEST_P(EdviInvarianceTest, RewriterIsIdempotent)
{
    comp::Executable once = comp::insertEdvi(plain);
    comp::RewriteStats rs;
    comp::Executable twice = comp::insertEdvi(once, &rs);
    EXPECT_EQ(rs.killsInserted, 0u);
    EXPECT_EQ(twice.code.size(), once.code.size());
}

TEST_P(EdviInvarianceTest, RewriterMatchesCompilerElimination)
{
    // The rewriter works from machine-level liveness, the compiler
    // from vreg liveness; their E-DVI should enable (nearly) the
    // same elimination. Allow the rewriter within 25% relative.
    comp::Executable rewritten = comp::insertEdvi(plain);

    arch::EmulatorOptions opts;
    opts.lvmStackDepth = 16;
    arch::Emulator ec(edvi, opts), er(rewritten, opts);
    ec.run(runLen);
    er.run(runLen);
    const double elim_c = static_cast<double>(
        ec.stats().saveElimOracle + ec.stats().restoreElimOracle);
    const double elim_r = static_cast<double>(
        er.stats().saveElimOracle + er.stats().restoreElimOracle);
    EXPECT_GT(elim_r, 0.0);
    EXPECT_NEAR(elim_r, elim_c, 0.25 * elim_c + 50.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EdviInvarianceTest,
    ::testing::ValuesIn(workload::allBenchmarks()),
    [](const auto &info) {
        return workload::benchmarkName(info.param);
    });

TEST(MachineLiveness, CallAndReturnBoundaries)
{
    // A hand-checkable procedure: the return makes callee-saved
    // registers live; the epilogue live-load bounds that liveness.
    using isa::Instruction;
    comp::Executable exe;
    exe.code.push_back(Instruction::aluImm(isa::Opcode::Addi,
                                           isa::regSp, isa::regSp,
                                           -16));
    exe.code.push_back(Instruction::liveStore(16, isa::regSp, 0));
    exe.code.push_back(
        Instruction::aluImm(isa::Opcode::Addi, 16, 4, 1));
    exe.code.push_back(
        Instruction::alu(isa::Opcode::Add, 2, 16, 16));
    exe.code.push_back(Instruction::liveLoad(16, isa::regSp, 0));
    exe.code.push_back(Instruction::aluImm(isa::Opcode::Addi,
                                           isa::regSp, isa::regSp,
                                           16));
    exe.code.push_back(Instruction::ret());
    exe.procs.push_back(comp::ProcInfo{"f", 0, 7});
    exe.entry = 0;

    comp::MachineLiveness ml = comp::analyzeProcedure(exe, 0);
    EXPECT_TRUE(ml.savedByProc.test(16));
    // s0's own value is live between its def (2) and last use (3)...
    EXPECT_TRUE(ml.liveAfter[2].test(16));
    // ...and dead after the last use: the epilogue live-load
    // redefines it.
    EXPECT_FALSE(ml.liveAfter[3].test(16));
    // The *entry* value of s0 is live into the prologue save.
    EXPECT_TRUE(ml.liveBefore[0].test(16));
    // sp is live throughout.
    EXPECT_TRUE(ml.liveAfter[0].test(isa::regSp));
}

} // namespace
} // namespace dvi
