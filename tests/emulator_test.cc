/**
 * @file
 * Functional emulator tests: architectural semantics, call/return,
 * recursion, memory, tracing, statistics.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "compiler/compile.hh"
#include "test_programs.hh"

namespace dvi
{
namespace arch
{
namespace
{

std::int64_t
globalWord(const Emulator &emu, unsigned index)
{
    return emu.memory().read(emu.executable().globalBase + 8 * index);
}

TEST(Emulator, SumLoopComputesCorrectResult)
{
    comp::Executable exe = comp::compile(testprog::sumProgram(100));
    Emulator emu(exe);
    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(globalWord(emu, 0), 5050);
}

TEST(Emulator, RecursiveFactorial)
{
    comp::Executable exe =
        comp::compile(testprog::factorialProgram(10));
    EmulatorOptions opts;
    opts.strictDeadReads = true;  // also validates E-DVI soundness
    Emulator emu(exe, opts);
    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(globalWord(emu, 0), 3628800);
    // main->fact(10)->...->fact(1)->fact(0): depth 11.
    EXPECT_EQ(emu.stats().maxCallDepth, 11u);
    EXPECT_EQ(emu.stats().deadReads, 0u);
}

TEST(Emulator, Fig7ProgramRunsAndCounts)
{
    comp::Executable exe = comp::compile(testprog::fig7Program());
    EmulatorOptions opts;
    opts.strictDeadReads = true;
    Emulator emu(exe, opts);
    emu.run();
    EXPECT_TRUE(emu.halted());
    const EmulatorStats &s = emu.stats();
    EXPECT_EQ(s.calls, s.returns + 0u);  // every call returned
    EXPECT_GT(s.saves, 0u);
    EXPECT_EQ(s.saves, s.restores);
    // Two eliminable pairs: the callee's save of s0 under caller2's
    // kill at its second call, and caller2's own prologue save of s0
    // (main's first cross-call value dies before it calls caller2,
    // so main kills s0 too). caller1's path eliminates nothing.
    EXPECT_EQ(s.saveElimOracle, 2u);
    EXPECT_EQ(s.restoreElimOracle, 2u);
}

TEST(Emulator, StepProducesTraceRecords)
{
    comp::Executable exe = comp::compile(testprog::sumProgram(3));
    Emulator emu(exe);
    TraceRecord tr;
    std::uint64_t steps = 0;
    std::uint64_t branches = 0, taken = 0;
    while (emu.step(&tr)) {
        ++steps;
        if (tr.inst.isCondBranch()) {
            ++branches;
            taken += tr.taken;
        }
        if (!tr.inst.isControl() && !tr.inst.isHalt()) {
            EXPECT_EQ(tr.nextPc, tr.pc + 1);
        }
    }
    EXPECT_EQ(steps, emu.stats().insts);
    EXPECT_EQ(branches, 3u);  // loop executes 3 times
    EXPECT_EQ(taken, 2u);     // last iteration falls through
}

TEST(Emulator, StepAfterHaltReturnsFalse)
{
    comp::Executable exe = comp::compile(testprog::sumProgram(1));
    Emulator emu(exe);
    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_FALSE(emu.step());
}

TEST(Emulator, RunWithBudgetStopsEarly)
{
    comp::Executable exe = comp::compile(testprog::sumProgram(1000));
    Emulator emu(exe);
    EXPECT_EQ(emu.run(50), 50u);
    EXPECT_FALSE(emu.halted());
}

TEST(Emulator, MemoryRoundTrip)
{
    Memory mem;
    EXPECT_EQ(mem.read(0x1000), 0);  // unwritten reads as zero
    mem.write(0x1000, -42);
    EXPECT_EQ(mem.read(0x1000), -42);
    EXPECT_EQ(mem.touchedWords(), 1u);
}

TEST(MemoryDeath, UnalignedAccessPanics)
{
    Memory mem;
    EXPECT_DEATH(mem.write(0x1001, 1), "unaligned");
    EXPECT_DEATH((void)mem.read(0x1007), "unaligned");
}

TEST(Emulator, DivisionByZeroYieldsZero)
{
    using namespace prog;
    Module mod;
    mod.globalWords = 2;
    mod.procs.resize(1);
    Procedure &main = mod.procs[0];
    main.name = "main";
    VReg a = main.newVReg(), z = main.newVReg(), d = main.newVReg(),
         gp = main.newVReg();
    int b0 = main.newBlock();
    main.emit(b0, irLoadImm(a, 7));
    main.emit(b0, irLoadImm(z, 0));
    main.emit(b0, irAlu(IrOp::Div, d, a, z));
    main.emit(b0, irLoadImm(gp, static_cast<std::int32_t>(
                                    Module::globalBase)));
    main.emit(b0, irStore(d, gp, 0));
    main.emit(b0, irHalt());

    Emulator emu(comp::compile(mod));
    emu.run();
    EXPECT_EQ(emu.memory().read(Module::globalBase), 0);
}

TEST(Emulator, ResultHashIsDeterministic)
{
    comp::Executable exe = comp::compile(testprog::sumProgram(50));
    Emulator a(exe), b(exe);
    a.run();
    b.run();
    EXPECT_EQ(a.resultHash(), b.resultHash());
}

TEST(Emulator, ResultHashSensitiveToResult)
{
    comp::Executable e1 = comp::compile(testprog::sumProgram(50));
    comp::Executable e2 = comp::compile(testprog::sumProgram(51));
    Emulator a(e1), b(e2);
    a.run();
    b.run();
    EXPECT_NE(a.resultHash(), b.resultHash());
}

TEST(Emulator, StatsClassifyInstructionMix)
{
    comp::Executable exe =
        comp::compile(testprog::factorialProgram(6));
    Emulator emu(exe);
    emu.run();
    const EmulatorStats &s = emu.stats();
    EXPECT_EQ(s.insts, s.progInsts + s.kills);
    EXPECT_EQ(s.memRefs, s.loads + s.stores);
    EXPECT_GT(s.calls, 0u);
    EXPECT_GT(s.condBranches, 0u);
    EXPECT_GE(s.condBranches, s.takenBranches);
}

TEST(Emulator, LvmSaveLoadInstructions)
{
    using namespace prog;
    // Hand-assemble at machine level: kill some registers, lvm-save,
    // define one again, lvm-load, halt — then inspect the LVM.
    comp::Executable exe;
    exe.name = "lvmtest";
    exe.globalBase = Module::globalBase;
    exe.globalWords = 2;
    using isa::Instruction;
    exe.code.push_back(
        Instruction::aluImm(isa::Opcode::Addi, 8, 0, 1));  // t0 live
    exe.code.push_back(
        Instruction::aluImm(isa::Opcode::Addi, 10, 0, 3)); // t2 live
    exe.code.push_back(Instruction::kill(RegMask{8, 9}));
    exe.code.push_back(Instruction::lvmSave(isa::regSp, -8));
    exe.code.push_back(
        Instruction::aluImm(isa::Opcode::Addi, 8, 0, 2));  // t0 live
    exe.code.push_back(Instruction::lvmLoad(isa::regSp, -8));
    exe.code.push_back(Instruction::halt());
    exe.procs.push_back(comp::ProcInfo{"main", 0, 7});
    exe.entry = 0;

    Emulator emu(exe);
    emu.run();
    // The lvm-load restored the mask saved at the kill point: t0
    // dead again even though it was redefined in between.
    EXPECT_FALSE(emu.lvm().isLive(8));
    EXPECT_FALSE(emu.lvm().isLive(9));
    EXPECT_TRUE(emu.lvm().isLive(10));
}

TEST(EmulatorDeath, RunawayPcPanics)
{
    comp::Executable exe;
    exe.name = "nohalt";
    exe.code.push_back(isa::Instruction::nop());
    exe.procs.push_back(comp::ProcInfo{"main", 0, 1});
    exe.entry = 0;
    Emulator emu(exe);
    EXPECT_DEATH(emu.run(), "outside code image");
}

} // namespace
} // namespace arch
} // namespace dvi
