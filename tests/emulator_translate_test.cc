/**
 * @file
 * Tier-1 translation tests: basic-block formation, the pre-baked
 * dead-read probe lists, interpreter/cache lockstep over branches,
 * fuel-guarded back edges and mutual recursion, misaligned-fault
 * paths (mid-block prefix stats), and TranslationCache keying —
 * per-executable invalidation, LRU eviction, recompile staleness,
 * and multi-threaded sharing of one translation.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "arch/emulator.hh"
#include "arch/xlate.hh"
#include "arch/xlate_cache.hh"
#include "compiler/compile.hh"
#include "fuzz/oracle.hh"
#include "fuzz/program_gen.hh"
#include "isa/decode.hh"
#include "test_programs.hh"

namespace dvi
{
namespace arch
{
namespace
{

using isa::Instruction;
using isa::Opcode;

/** Minimal runnable image around a hand-assembled code vector. */
comp::Executable
assemble(std::vector<Instruction> code)
{
    comp::Executable exe;
    exe.name = "xlate-test";
    exe.globalBase = prog::Module::globalBase;
    exe.globalWords = 8;
    exe.code = std::move(code);
    exe.procs.push_back(comp::ProcInfo{
        "main", 0, static_cast<int>(exe.code.size())});
    exe.entry = 0;
    return exe;
}

/** Stats equality across every EmulatorStats field. */
void
expectStatsEq(const EmulatorStats &a, const EmulatorStats &b)
{
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.progInsts, b.progInsts);
    EXPECT_EQ(a.kills, b.kills);
    EXPECT_EQ(a.aluOps, b.aluOps);
    EXPECT_EQ(a.memRefs, b.memRefs);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.calls, b.calls);
    EXPECT_EQ(a.returns, b.returns);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.fpOps, b.fpOps);
    EXPECT_EQ(a.saves, b.saves);
    EXPECT_EQ(a.restores, b.restores);
    EXPECT_EQ(a.saveElimOracle, b.saveElimOracle);
    EXPECT_EQ(a.restoreElimOracle, b.restoreElimOracle);
    EXPECT_EQ(a.deadReads, b.deadReads);
    EXPECT_EQ(a.firstDeadReadPc, b.firstDeadReadPc);
    EXPECT_EQ(a.firstDeadReadReg, b.firstDeadReadReg);
    EXPECT_EQ(a.maxCallDepth, b.maxCallDepth);
}

/** Run `exe` under both tiers with identical options and require
 * bit-identical stats, halt state, and result hash. */
void
expectTierParity(const comp::Executable &exe, EmulatorOptions opts,
                 std::uint64_t max_insts = 0)
{
    opts.tier = ExecTier::Interp;
    Emulator interp(exe, opts);
    interp.run(max_insts);

    opts.tier = ExecTier::Xlate;
    Emulator xlate(exe, opts);
    xlate.run(max_insts);

    EXPECT_EQ(interp.halted(), xlate.halted());
    EXPECT_EQ(interp.faulted(), xlate.faulted());
    EXPECT_EQ(interp.faultPc(), xlate.faultPc());
    EXPECT_EQ(interp.pc(), xlate.pc());
    expectStatsEq(interp.stats(), xlate.stats());
    for (RegIndex r = 0; r < isa::numIntRegs; ++r)
        EXPECT_EQ(interp.intReg(r), xlate.intReg(r)) << "r" << int(r);
    EXPECT_EQ(interp.resultHash(), xlate.resultHash());
}

// ------------------------------------------------- block formation

TEST(TranslateBlock, StraightLineEndsAtHaltInclusive)
{
    const comp::Executable exe = assemble({
        Instruction::aluImm(Opcode::Addi, 8, 0, 1),
        Instruction::aluImm(Opcode::Addi, 9, 8, 2),
        Instruction::halt(),
        Instruction::nop(),  // unreachable, next block's leader
    });
    const XBlock b = translateBlock(exe.code, 0);
    EXPECT_EQ(b.entryPc, 0u);
    EXPECT_EQ(b.len, 3u);  // halt is the terminator, inclusive
    EXPECT_EQ(b.stat.insts, 3u);
    EXPECT_EQ(b.stat.progInsts, 3u);
    EXPECT_EQ(b.stat.aluOps, 2u);
}

TEST(TranslateBlock, BranchTerminatesAndKillsFlowThrough)
{
    const comp::Executable exe = assemble({
        Instruction::kill(RegMask{9}),
        Instruction::aluImm(Opcode::Addi, 8, 0, 5),
        Instruction::branch(Opcode::Bne, 8, 0, 0),
        Instruction::halt(),
    });
    const XBlock b = translateBlock(exe.code, 0);
    EXPECT_EQ(b.len, 3u);  // kill is NOT a terminator
    EXPECT_EQ(b.stat.kills, 1u);
    EXPECT_EQ(b.stat.progInsts, 2u);
    EXPECT_EQ(b.stat.condBranches, 1u);
    // The kill mask rides in the micro-op's imm, pre-baked.
    EXPECT_EQ(b.uops[0].op, Opcode::Kill);
    EXPECT_EQ(static_cast<std::uint32_t>(b.uops[0].imm),
              RegMask{9}.raw());
}

TEST(TranslateBlock, CapsAtMaxBlockLenWithoutTerminator)
{
    std::vector<Instruction> code(maxBlockLen + 20,
                                  Instruction::nop());
    code.push_back(Instruction::halt());
    const comp::Executable exe = assemble(std::move(code));
    const XBlock head = translateBlock(exe.code, 0);
    EXPECT_EQ(head.len, maxBlockLen);
    // Successor picks up at the fall-through pc and reaches halt.
    const XBlock tail = translateBlock(exe.code, head.len);
    EXPECT_EQ(tail.entryPc, maxBlockLen);
    EXPECT_EQ(tail.len, 21u);
}

TEST(TranslateBlock, CapsAtEndOfImage)
{
    const comp::Executable exe = assemble({
        Instruction::nop(),
        Instruction::aluImm(Opcode::Addi, 8, 0, 1),
    });
    const XBlock b = translateBlock(exe.code, 1);
    EXPECT_EQ(b.len, 1u);  // image ends before any terminator
}

TEST(TranslateBlock, MidBlockEntryDecodesOverlappingBlock)
{
    const comp::Executable exe = assemble({
        Instruction::aluImm(Opcode::Addi, 8, 0, 1),
        Instruction::aluImm(Opcode::Addi, 9, 0, 2),
        Instruction::halt(),
    });
    const XBlock whole = translateBlock(exe.code, 0);
    const XBlock mid = translateBlock(exe.code, 1);
    EXPECT_EQ(whole.len, 3u);
    EXPECT_EQ(mid.len, 2u);
    EXPECT_EQ(mid.uops[0].pc, 1u);
    EXPECT_EQ(mid.uops[0].imm, whole.uops[1].imm);
}

// ------------------------------------- dead-read probe pre-baking

TEST(DeadCheckRegs, StoreProbesDataBeforeBase)
{
    RegIndex chk[2];
    const Instruction st = Instruction::store(10, 11, 0);
    ASSERT_EQ(isa::deadCheckRegs(st, chk), 2u);
    EXPECT_EQ(chk[0], st.rs2);  // data register first
    EXPECT_EQ(chk[1], st.rs1);  // then the base
}

TEST(DeadCheckRegs, LiveStoreDataRegisterIsExempt)
{
    RegIndex chk[2];
    const Instruction sv = Instruction::liveStore(20, isa::regSp, -8);
    ASSERT_EQ(isa::deadCheckRegs(sv, chk), 1u);
    EXPECT_EQ(chk[0], isa::regSp);  // base only: dead saves squash
}

TEST(DeadCheckRegs, ZeroRegisterIsExcluded)
{
    RegIndex chk[2];
    EXPECT_EQ(isa::deadCheckRegs(
                  Instruction::alu(Opcode::Add, 8, 0, 0), chk),
              0u);
    EXPECT_EQ(isa::deadCheckRegs(
                  Instruction::aluImm(Opcode::Addi, 8, 0, 1), chk),
              0u);
}

TEST(DeadCheckRegs, DuplicateSourceProbedTwice)
{
    RegIndex chk[2];
    ASSERT_EQ(isa::deadCheckRegs(
                  Instruction::alu(Opcode::Add, 8, 9, 9), chk),
              2u);
    EXPECT_EQ(chk[0], 9);
    EXPECT_EQ(chk[1], 9);
}

TEST(DeadCheckRegs, RetProbesReturnAddress)
{
    RegIndex chk[2];
    ASSERT_EQ(isa::deadCheckRegs(Instruction::ret(), chk), 1u);
    EXPECT_EQ(chk[0], isa::regRa);
}

TEST(TranslateBlock, MicroOpsCarryTheProbeList)
{
    const comp::Executable exe = assemble({
        Instruction::store(10, 11, 8),
        Instruction::halt(),
    });
    const XBlock b = translateBlock(exe.code, 0);
    ASSERT_EQ(b.uops[0].nChk, 2u);
    EXPECT_EQ(b.uops[0].chk0, 10);
    EXPECT_EQ(b.uops[0].chk1, 11);
    EXPECT_EQ(b.uops[1].nChk, 0u);
}

// ------------------------------------------------ execution parity

TEST(XlateTier, BranchTakenAndNotTakenMatchInterpreter)
{
    // sumProgram's loop branch is taken n-1 times then falls
    // through: both terminator outcomes on the same block.
    expectTierParity(comp::compile(testprog::sumProgram(100)),
                     EmulatorOptions{});
}

TEST(XlateTier, RecursionAndLvmOracleMatchInterpreter)
{
    EmulatorOptions opts;
    opts.strictDeadReads = true;
    expectTierParity(comp::compile(testprog::factorialProgram(10)),
                     opts);
    expectTierParity(comp::compile(testprog::fig7Program()), opts);
}

TEST(XlateTier, FuelGuardedBackEdgesAndMutualRecursion)
{
    // The adversarial generator emits exactly the block shapes the
    // translator must not get wrong: fuel-guarded back edges,
    // mutual recursion, forward branches into block middles.
    for (std::uint64_t seed : {7u, 19u, 401u}) {
        fuzz::ProgramParams params;
        params.seed = seed;
        params.numProcs = 3;
        params.backEdgeProb = 0.4;
        params.callProb = 0.5;
        const comp::Executable exe =
            comp::compile(fuzz::generateProgram(params));
        EmulatorOptions opts;
        opts.faultOnMisaligned = true;
        expectTierParity(exe, opts, /*max_insts=*/200000);
    }
}

TEST(XlateTier, BudgetedRunStopsAtTheSameInstruction)
{
    const comp::Executable exe =
        comp::compile(testprog::sumProgram(1000));
    // Budgets that land mid-block force the interpreter tail path.
    for (std::uint64_t budget : {1u, 2u, 3u, 50u, 63u, 64u, 65u}) {
        EmulatorOptions opts;
        opts.tier = ExecTier::Xlate;
        Emulator emu(exe, opts);
        EXPECT_EQ(emu.run(budget), budget);
        EXPECT_FALSE(emu.halted());
        expectTierParity(exe, EmulatorOptions{}, budget);
    }
}

TEST(XlateTier, StepBatchRecordsMatchInterpreter)
{
    const comp::Executable exe =
        comp::compile(testprog::factorialProgram(8));
    EmulatorOptions opts;
    opts.tier = ExecTier::Interp;
    Emulator a(exe, opts);
    opts.tier = ExecTier::Xlate;
    Emulator b(exe, opts);

    TraceRecord ra, rb[7];
    bool done = false;
    while (!done) {
        // An awkward batch size so batches straddle block edges.
        const std::size_t n = b.stepBatch(rb, 7);
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(a.step(&ra));
            EXPECT_EQ(ra.pc, rb[i].pc);
            EXPECT_EQ(ra.nextPc, rb[i].nextPc);
            EXPECT_EQ(ra.effAddr, rb[i].effAddr);
            EXPECT_EQ(ra.taken, rb[i].taken);
            EXPECT_EQ(ra.inst.op, rb[i].inst.op);
        }
        done = b.halted();
    }
    EXPECT_TRUE(a.halted());
    EXPECT_TRUE(b.halted());
    expectStatsEq(a.stats(), b.stats());
}

TEST(XlateTier, ProgInstGateFallsBackExactly)
{
    const comp::Executable exe =
        comp::compile(testprog::sumProgram(200));
    for (std::uint64_t gate : {1u, 5u, 17u, 64u}) {
        EmulatorOptions opts;
        opts.tier = ExecTier::Interp;
        Emulator a(exe, opts);
        opts.tier = ExecTier::Xlate;
        Emulator b(exe, opts);
        TraceRecord bufA[256], bufB[256];
        const std::size_t na = a.stepBatch(bufA, 256, gate);
        const std::size_t nb = b.stepBatch(bufB, 256, gate);
        ASSERT_EQ(na, nb) << "gate " << gate;
        for (std::size_t i = 0; i < na; ++i)
            EXPECT_EQ(bufA[i].pc, bufB[i].pc);
        expectStatsEq(a.stats(), b.stats());
    }
}

// -------------------------------------------- misaligned faults

TEST(XlateTier, MisalignedFaultMidBlockMatchesInterpreter)
{
    // addi lands the bad address in r9 (pc 0-1), then two ALU ops
    // retire before the faulting store — the fault is mid-block, so
    // the prefix-stats path is exercised.
    const comp::Executable exe = assemble({
        Instruction::aluImm(Opcode::Addi, 9, 0, 0x1001),
        Instruction::aluImm(Opcode::Addi, 8, 0, 7),
        Instruction::aluImm(Opcode::Addi, 8, 8, 1),
        Instruction::store(8, 9, 0),  // faults: 0x1001 unaligned
        Instruction::halt(),
    });
    EmulatorOptions opts;
    opts.faultOnMisaligned = true;
    expectTierParity(exe, opts);

    opts.tier = ExecTier::Xlate;
    Emulator emu(exe, opts);
    emu.run();
    EXPECT_TRUE(emu.faulted());
    EXPECT_EQ(emu.faultPc(), 3u);
    // The faulting store still retires (stats count it); the write
    // itself is suppressed.
    EXPECT_EQ(emu.stats().insts, 4u);
    EXPECT_EQ(emu.stats().stores, 1u);
    EXPECT_EQ(emu.memory().touchedWords(), 0u);
}

TEST(XlateTier, MisalignedFaultedLoadReadsZero)
{
    const comp::Executable exe = assemble({
        Instruction::aluImm(Opcode::Addi, 9, 0, 0x1003),
        Instruction::aluImm(Opcode::Addi, 8, 0, 55),
        Instruction::load(8, 9, 0),  // faults: result forced to 0
        Instruction::halt(),
    });
    EmulatorOptions opts;
    opts.faultOnMisaligned = true;
    expectTierParity(exe, opts);

    opts.tier = ExecTier::Xlate;
    Emulator emu(exe, opts);
    emu.run();
    EXPECT_TRUE(emu.faulted());
    EXPECT_EQ(emu.intReg(8), 0);
}

// ------------------------------------------ dead-read diagnostics

TEST(XlateTier, FirstDeadReadDiagnosticsMatchInterpreter)
{
    // Corrupt one kill mask so the E-DVI binary really has a dead
    // read, then require identical firstDeadReadPc/Reg on both
    // tiers (the probe-order contract, end to end).
    comp::CompileOptions copts;
    copts.edvi = comp::EdviPolicy::Dense;
    comp::Executable exe =
        comp::compile(testprog::fig7Program(), copts);
    fuzz::FaultSpec fault;
    fault.enabled = true;
    fault.killOrdinal = 2;
    fault.reg = 4;  // an argument register: read soon after the kill
    bool applied = false;
    for (RegIndex r = 4; r < 16 && !applied; ++r) {
        fault.reg = r;
        applied = fuzz::applyKillFault(exe, fault);
    }
    ASSERT_TRUE(applied);

    EmulatorOptions opts;  // strictDeadReads off: count, don't panic
    opts.tier = ExecTier::Interp;
    Emulator a(exe, opts);
    a.run();
    opts.tier = ExecTier::Xlate;
    Emulator b(exe, opts);
    b.run();
    expectStatsEq(a.stats(), b.stats());
}

// --------------------------------------------- translation cache

TEST(TranslationCache, HitsMissesAndInvalidation)
{
    TranslationCache cache(4);
    const comp::Executable exe =
        comp::compile(testprog::sumProgram(10));

    const auto p1 = cache.acquire(exe);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    const auto p2 = cache.acquire(exe);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(p1.get(), p2.get());  // shared, not re-translated

    EXPECT_TRUE(cache.invalidate(exe));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.invalidate(exe));  // already gone

    const auto p3 = cache.acquire(exe);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_NE(p1.get(), p3.get());
    // The old handle stays valid after eviction.
    EXPECT_TRUE(p1->matches(exe));
}

TEST(TranslationCache, RecompileNeverSeesStaleTranslation)
{
    // Same name, same shape, different code: the content key must
    // separate them — a stale translation surviving a recompile is
    // exactly the bug this cache design rules out.
    TranslationCache cache(4);
    const comp::Executable v1 =
        comp::compile(testprog::sumProgram(10));
    comp::Executable v2 = comp::compile(testprog::sumProgram(11));
    v2.name = v1.name;

    const auto p1 = cache.acquire(v1);
    const auto p2 = cache.acquire(v2);
    EXPECT_NE(p1.get(), p2.get());
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_TRUE(p1->matches(v1));
    EXPECT_FALSE(p1->matches(v2));

    // And execution through the process cache agrees: each binary
    // computes its own result.
    EmulatorOptions opts;
    opts.tier = ExecTier::Xlate;
    Emulator e1(v1, opts), e2(v2, opts);
    e1.run();
    e2.run();
    EXPECT_NE(e1.resultHash(), e2.resultHash());
}

TEST(TranslationCache, LruEvictionKeepsLiveHandlesValid)
{
    TranslationCache cache(2);
    const comp::Executable a =
        comp::compile(testprog::sumProgram(1));
    const comp::Executable b =
        comp::compile(testprog::sumProgram(2));
    const comp::Executable c =
        comp::compile(testprog::sumProgram(3));

    const auto pa = cache.acquire(a);
    const auto pb = cache.acquire(b);
    (void)cache.acquire(a);  // refresh a: b is now LRU
    const auto pc = cache.acquire(c);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);

    // b was evicted: re-acquiring misses and re-translates.
    const std::uint64_t misses = cache.misses();
    const auto pb2 = cache.acquire(b);
    EXPECT_EQ(cache.misses(), misses + 1);
    EXPECT_NE(pb.get(), pb2.get());
    EXPECT_TRUE(pb->matches(b));  // evicted handle still usable
}

TEST(TranslationCache, ClearDropsEverything)
{
    TranslationCache cache;
    (void)cache.acquire(comp::compile(testprog::sumProgram(5)));
    (void)cache.acquire(comp::compile(testprog::sumProgram(6)));
    EXPECT_EQ(cache.size(), 2u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TranslatedProgram, LazyBlockIndexGrowsOnDemand)
{
    const comp::Executable exe =
        comp::compile(testprog::factorialProgram(5));
    TranslatedProgram prog(exe);
    EXPECT_EQ(prog.blockCount(), 0u);
    EXPECT_EQ(prog.blockAt(static_cast<std::uint32_t>(exe.entry)),
              nullptr);
    const XBlock &b =
        prog.getOrTranslate(static_cast<std::uint32_t>(exe.entry));
    EXPECT_EQ(prog.blockCount(), 1u);
    EXPECT_EQ(&prog.getOrTranslate(
                  static_cast<std::uint32_t>(exe.entry)),
              &b);  // idempotent, same storage
    EXPECT_EQ(prog.blockAt(static_cast<std::uint32_t>(exe.entry)),
              &b);
}

TEST(TranslationCache, ConcurrentEmulatorsShareOneTranslation)
{
    const comp::Executable exe =
        comp::compile(testprog::factorialProgram(9));
    TranslationCache cache(8);
    const auto shared = cache.acquire(exe);

    // Reference result from a solo run.
    EmulatorOptions opts;
    opts.tier = ExecTier::Xlate;
    Emulator ref(exe, opts);
    ref.run();

    std::vector<std::thread> threads;
    std::vector<std::uint64_t> hashes(8, 0);
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            // All eight race on the same lazy block table via the
            // process cache (the TSan leg runs this too).
            EmulatorOptions o;
            o.tier = ExecTier::Xlate;
            Emulator emu(exe, o);
            emu.run();
            hashes[t] = emu.resultHash();
        });
    }
    for (auto &th : threads)
        th.join();
    for (const std::uint64_t h : hashes)
        EXPECT_EQ(h, ref.resultHash());
}

TEST(XlateTier, EmulatorExposesItsTranslation)
{
    const comp::Executable exe =
        comp::compile(testprog::sumProgram(10));
    EmulatorOptions opts;
    opts.tier = ExecTier::Xlate;
    Emulator emu(exe, opts);
    EXPECT_EQ(emu.translation(), nullptr);  // lazy until first run
    emu.run();
    ASSERT_NE(emu.translation(), nullptr);
    EXPECT_GT(emu.translation()->blockCount(), 0u);
    EXPECT_TRUE(emu.translation()->matches(exe));
}

} // namespace
} // namespace arch
} // namespace dvi
