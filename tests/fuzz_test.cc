/**
 * @file
 * Tests for the differential-validation subsystem (src/fuzz/):
 * generator well-formedness and determinism, oracle layers, static
 * kill verification, fault injection end-to-end (catch -> minimize
 * -> replayable byte-identical repro), and the centralized test
 * seeding.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "arch/emulator.hh"
#include "base/test_seed.hh"
#include "analysis/lint.hh"
#include "compiler/compile.hh"
#include "fuzz/campaign.hh"
#include "fuzz/minimizer.hh"
#include "fuzz/oracle.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/repro.hh"
#include "program/ir_json.hh"
#include "uarch/core.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"

namespace dvi
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(TestSeed, EnvOverridesFallback)
{
    // Save and restore any real override: clobbering it would break
    // exactly the replay contract this variable exists for in every
    // later test of this binary.
    const char *prev = ::getenv("DVI_TEST_SEED");
    const std::string saved = prev ? prev : "";

    ::setenv("DVI_TEST_SEED", "1234", 1);
    EXPECT_EQ(testSeedQuiet(7), 1234u);
    ::setenv("DVI_TEST_SEED", "0x20", 1);
    EXPECT_EQ(testSeedQuiet(7), 32u);
    ::setenv("DVI_TEST_SEED", "bogus", 1);
    EXPECT_EQ(testSeedQuiet(7), 7u);
    ::unsetenv("DVI_TEST_SEED");
    EXPECT_EQ(testSeedQuiet(7), 7u);

    if (prev)
        ::setenv("DVI_TEST_SEED", saved.c_str(), 1);
}

TEST(TestSeed, MixSeedDecorrelatesAndNeverReturnsZero)
{
    EXPECT_NE(mixSeed(1, 0), mixSeed(1, 1));
    EXPECT_NE(mixSeed(1, 0), mixSeed(2, 0));
    for (std::uint64_t s = 0; s < 64; ++s)
        EXPECT_NE(mixSeed(0, s), 0u);
}

TEST(ProgramGen, DeterministicInSeed)
{
    Rng r1(42), r2(42);
    const fuzz::ProgramParams p1 = fuzz::randomProgramParams(r1);
    const fuzz::ProgramParams p2 = fuzz::randomProgramParams(r2);
    const prog::Module m1 = fuzz::generateProgram(p1);
    const prog::Module m2 = fuzz::generateProgram(p2);
    EXPECT_EQ(prog::moduleToJson(m1).dump(0),
              prog::moduleToJson(m2).dump(0));
}

TEST(ProgramGen, ProgramsAreWellFormedAndTerminate)
{
    const std::uint64_t base =
        testSeed(5, "ProgramGen.ProgramsAreWellFormedAndTerminate");
    for (unsigned i = 0; i < 10; ++i) {
        Rng rng(mixSeed(base, i));
        const prog::Module mod =
            fuzz::generateProgram(fuzz::randomProgramParams(rng));
        ASSERT_EQ(mod.validate(), "");
        const comp::Executable exe = comp::compile(
            mod, comp::CompileOptions{comp::EdviPolicy::None});
        arch::EmulatorOptions eo;
        eo.faultOnMisaligned = true;
        arch::Emulator emu(exe, eo);
        emu.run(300000);
        EXPECT_FALSE(emu.faulted()) << "seed index " << i;
        EXPECT_EQ(emu.stats().deadReads, 0u) << "seed index " << i;
    }
}

TEST(IrJson, RoundTripsByteIdentical)
{
    Rng rng(mixSeed(testSeed(9, "IrJson.RoundTripsByteIdentical"),
                    0));
    const prog::Module mod =
        fuzz::generateProgram(fuzz::randomProgramParams(rng));
    const std::string text = prog::moduleToJson(mod).dump(2);
    const json::ParseResult parsed = json::parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    prog::Module loaded;
    ASSERT_EQ(prog::moduleFromJson(parsed.value, loaded), "");
    EXPECT_EQ(prog::moduleToJson(loaded).dump(2), text);
}

TEST(IrJson, RejectsMalformedDocuments)
{
    prog::Module out;
    EXPECT_NE(moduleFromJson(json::Value(std::uint64_t(3)), out),
              "");
    json::Value obj = json::Value::object();
    obj.set("name", json::Value("x"));
    EXPECT_NE(moduleFromJson(obj, out), "");  // missing everything
}

TEST(Oracle, PassesOnGeneratedPrograms)
{
    fuzz::FuzzConfig cfg;
    cfg.seed = testSeed(11, "Oracle.PassesOnGeneratedPrograms");
    cfg.programs = 30;
    cfg.oracle.maxProgInsts = 30000;
    cfg.reproPrefix =
        ::testing::TempDir() + "fuzz-test-oracle";
    const fuzz::FuzzResult result =
        fuzz::runFuzzCampaign(cfg, nullptr);
    EXPECT_EQ(result.failures, 0u) << result.firstFailure;
    EXPECT_EQ(result.programsRun, 30u);
    EXPECT_GT(result.totalProgInsts, 0u);
    // The stream must actually exercise DVI.
    EXPECT_GT(result.totalStaticKills, 0u);
    EXPECT_GT(result.totalSavesEliminated, 0u);
}

TEST(Oracle, RejectsUseOfUndefinedVReg)
{
    prog::Module mod;
    mod.name = "bad";
    mod.globalWords = 16;
    mod.procs.resize(1);
    prog::Procedure &main = mod.procs[0];
    main.name = "main";
    const int b = main.newBlock();
    const prog::VReg ghost = main.newVReg();
    prog::VReg dst = main.newVReg();
    main.emit(b, prog::irAluImm(prog::IrOp::AddImm, dst, ghost, 1));
    main.emit(b, prog::irHalt());
    ASSERT_EQ(mod.validate(), "");  // structurally fine...

    const fuzz::OracleReport rep =
        fuzz::runOracle(mod, fuzz::OracleOptions{});
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.failure.rfind("invalid module", 0), 0u)
        << rep.failure;
}

TEST(Oracle, MisalignedAccessIsClassedIllFormed)
{
    prog::Module mod;
    mod.name = "misaligned";
    mod.globalWords = 16;
    mod.procs.resize(1);
    prog::Procedure &main = mod.procs[0];
    main.name = "main";
    const int b = main.newBlock();
    prog::VReg base = main.newVReg();
    main.emit(b, prog::irLoadImm(
                     base, static_cast<std::int32_t>(
                               prog::Module::globalBase)));
    prog::VReg t = main.newVReg();
    main.emit(b, prog::irLoad(t, base, 4));  // not 8-aligned
    main.emit(b, prog::irHalt());
    ASSERT_EQ(mod.validate(), "");

    const fuzz::OracleReport rep =
        fuzz::runOracle(mod, fuzz::OracleOptions{});
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.failure.find("ill-formed program"),
              std::string::npos)
        << rep.failure;
    // The class is excluded from real failures, so the minimizer
    // will never chase it.
    EXPECT_FALSE(
        fuzz::realOracleFailure(mod, fuzz::OracleOptions{}));
}

TEST(Emulator, MisalignedFaultIsGracefulWhenEnabled)
{
    prog::Module mod;
    mod.name = "misaligned";
    mod.globalWords = 16;
    mod.procs.resize(1);
    prog::Procedure &main = mod.procs[0];
    main.name = "main";
    const int b = main.newBlock();
    prog::VReg base = main.newVReg();
    main.emit(b, prog::irLoadImm(
                     base, static_cast<std::int32_t>(
                               prog::Module::globalBase)));
    prog::VReg t = main.newVReg();
    main.emit(b, prog::irLoad(t, base, 4));
    main.emit(b, prog::irHalt());
    const comp::Executable exe = comp::compile(
        mod, comp::CompileOptions{comp::EdviPolicy::None});

    arch::EmulatorOptions graceful;
    graceful.faultOnMisaligned = true;
    arch::Emulator soft(exe, graceful);
    soft.run(100);
    EXPECT_TRUE(soft.faulted());
    EXPECT_TRUE(soft.halted());

    arch::Emulator hard(exe);  // default: alignment panics
    EXPECT_DEATH(hard.run(100), "unaligned");
}

TEST(StaticVerifier, CleanOnEveryBenchmarkAndPolicy)
{
    for (workload::BenchmarkId id : workload::allBenchmarks()) {
        const prog::Module mod = workload::generateBenchmark(id);
        for (comp::EdviPolicy policy :
             {comp::EdviPolicy::CallSites, comp::EdviPolicy::Dense}) {
            const comp::Executable exe = comp::compile(
                mod, comp::CompileOptions{policy});
            EXPECT_EQ(analysis::verifyKills(exe), "")
                << workload::benchmarkName(id);
        }
    }
}

TEST(StaticVerifier, FlagsCorruptedKillMask)
{
    const prog::Module mod =
        workload::generateBenchmark(workload::BenchmarkId::Perl);
    comp::Executable exe = comp::compile(
        mod, comp::CompileOptions{comp::EdviPolicy::CallSites});
    ASSERT_GT(exe.countKills(), 0u);

    // Find an applicable corruption (some bits are already set).
    bool applied = false;
    for (unsigned ordinal = 0; ordinal < 8 && !applied; ++ordinal) {
        for (RegIndex reg = 4; reg < 24 && !applied; ++reg) {
            fuzz::FaultSpec f;
            f.enabled = true;
            f.killOrdinal = ordinal;
            f.reg = reg;
            comp::Executable candidate = exe;
            if (fuzz::applyKillFault(candidate, f)) {
                applied = true;
                EXPECT_NE(analysis::verifyKills(candidate), "");
            }
        }
    }
    ASSERT_TRUE(applied);
}

/** End-to-end acceptance: an intentionally-broken kill mask is
 * caught, minimized, and replayed byte-identically from its emitted
 * manifest — with the static layer on (cheapest catch) and off (the
 * dynamic dead-read layer must catch it instead). */
class FaultInjectionTest : public ::testing::TestWithParam<bool>
{
};

TEST_P(FaultInjectionTest, CaughtMinimizedAndReplayable)
{
    const bool static_check = GetParam();
    fuzz::FuzzConfig cfg;
    cfg.seed = 1;
    cfg.programs = 10;
    cfg.maxFailures = 1;
    cfg.oracle.maxProgInsts = 40000;
    cfg.oracle.staticCheck = static_check;
    cfg.oracle.fault.enabled = true;
    cfg.oracle.fault.killOrdinal = 1;
    cfg.oracle.fault.reg = 17;
    cfg.reproPrefix = ::testing::TempDir() + "fuzz-test-fault-" +
                      (static_check ? "static" : "dynamic");

    const fuzz::FuzzResult result =
        fuzz::runFuzzCampaign(cfg, nullptr);
    ASSERT_EQ(result.failures, 1u);
    ASSERT_EQ(result.reproPaths.size(), 1u);
    if (static_check)
        EXPECT_NE(result.firstFailure.find("static:"),
                  std::string::npos)
            << result.firstFailure;
    else
        EXPECT_NE(result.firstFailure.find("dead read"),
                  std::string::npos)
            << result.firstFailure;

    // The repro loads, replays to the same failure, and re-emits
    // byte-identically.
    const std::string text = readFile(result.reproPaths[0]);
    ASSERT_FALSE(text.empty());
    fuzz::Repro repro;
    ASSERT_EQ(fuzz::reproFromJson(text, repro), "");
    EXPECT_EQ(fuzz::reproToJson(repro), text);
    const fuzz::OracleReport replayed = fuzz::replay(repro);
    EXPECT_FALSE(replayed.ok);
    EXPECT_EQ(replayed.failure, repro.failure);

    // Minimization really shrank it.
    std::size_t insts = 0;
    for (const auto &p : repro.program.procs)
        insts += p.instCount();
    EXPECT_LE(insts, 200u);
}

INSTANTIATE_TEST_SUITE_P(StaticAndDynamic, FaultInjectionTest,
                         ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "StaticLayer"
                                               : "DynamicLayers";
                         });

#ifndef NDEBUG
TEST(CoreInvariantDeath, DispatchReadOfKilledRegisterPanics)
{
    // The debug-build hook in uarch::Core::doDispatch: a committed
    // instruction reading a register whose mapping a kill reclaimed
    // is incorrect E-DVI and must panic, not simulate on.
    using isa::Instruction;
    using isa::Opcode;
    comp::Executable exe;
    exe.code.push_back(Instruction::aluImm(Opcode::Addi, 5, 0, 7));
    exe.code.push_back(Instruction::kill(RegMask{5}));
    exe.code.push_back(Instruction::alu(Opcode::Add, 6, 5, 5));
    exe.code.push_back(Instruction::halt());
    exe.procs.push_back(comp::ProcInfo{"main", 0, 4});
    exe.entry = 0;

    uarch::CoreConfig cc;
    cc.dvi = uarch::DviConfig::full();
    uarch::Core core(exe, cc);
    EXPECT_DEATH(core.run(), "DVI invariant");
}
#endif

TEST(Minimizer, ShrinksToThePredicateCore)
{
    // A synthetic failure: "main contains a Div". The minimizer
    // should strip nearly everything else.
    prog::Module mod;
    mod.name = "shrink";
    mod.globalWords = 16;
    mod.procs.resize(1);
    prog::Procedure &main = mod.procs[0];
    main.name = "main";
    const int b = main.newBlock();
    prog::VReg a = main.newVReg();
    main.emit(b, prog::irLoadImm(a, 5));
    for (int i = 0; i < 30; ++i) {
        prog::VReg t = main.newVReg();
        main.emit(b, prog::irAluImm(prog::IrOp::AddImm, t, a, i));
    }
    prog::VReg d = main.newVReg();
    main.emit(b, prog::irAlu(prog::IrOp::Div, d, a, a));
    main.emit(b, prog::irHalt());
    ASSERT_EQ(mod.validate(), "");

    const auto has_div = [](const prog::Module &m) {
        for (const auto &p : m.procs)
            for (const auto &blk : p.blocks)
                for (const auto &inst : blk.insts)
                    if (inst.op == prog::IrOp::Div)
                        return true;
        return false;
    };
    fuzz::MinimizeStats stats;
    const prog::Module small =
        fuzz::minimize(mod, has_div, 1000, &stats);
    EXPECT_TRUE(has_div(small));
    EXPECT_LT(stats.instsAfter, stats.instsBefore);
    EXPECT_LE(small.procs[0].instCount(), 3u);
    EXPECT_GT(stats.probes, 0u);
}

TEST(Minimizer, DropsUncalledProcedures)
{
    Rng rng(mixSeed(
        testSeed(21, "Minimizer.DropsUncalledProcedures"), 3));
    fuzz::ProgramParams params = fuzz::randomProgramParams(rng);
    params.numProcs = 5;
    const prog::Module mod = fuzz::generateProgram(params);
    const auto always = [](const prog::Module &m) {
        return !m.procs.empty();
    };
    fuzz::MinimizeStats stats;
    const prog::Module small =
        fuzz::minimize(mod, always, 2000, &stats);
    EXPECT_EQ(small.procs.size(), 1u);  // only main survives
    EXPECT_EQ(small.mainIndex, 0);
}

} // namespace
} // namespace dvi
