/**
 * @file
 * Shared definition of the golden-stats scenario set.
 *
 * Used by two translation units that must agree exactly:
 *
 *  - tools/golden_stats.cc (the `dvi-golden` tool) runs the set and
 *    emits tests/uarch_golden_values.inc;
 *  - tests/uarch_golden_test.cc runs the same set and compares every
 *    CoreStats field against that .inc.
 *
 * The recorded values were generated from the original scan-based
 * Core::run() before the event-driven scheduler rewrite, so the test
 * proves the rewrite is cycle-exact. Regenerate only for a change
 * that *intends* to alter timing behavior:
 *
 *     build/dvi-golden > tests/uarch_golden_values.inc
 */

#ifndef DVI_TESTS_GOLDEN_COMMON_HH
#define DVI_TESTS_GOLDEN_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "compiler/compile.hh"
#include "sim/scenario.hh"
#include "uarch/core.hh"
#include "uarch/stats_digest.hh"
#include "workload/benchmarks.hh"

namespace dvi
{
namespace golden
{

/** One locked configuration: a (workload, DVI preset, register-file
 * size, budget) point. */
struct GoldenScenario
{
    const char *benchmark;
    const char *preset;
    unsigned numPhysRegs;
    std::uint64_t maxInsts;
};

/** A scenario plus its recorded pre-rewrite digest. */
struct GoldenRecord
{
    GoldenScenario scenario;
    uarch::CoreStatsDigest expect;
};

/** The locked set: four workloads (ijpeg covers the FP-dependency
 * path, li the deep call stacks) x the four DVI presets x a roomy
 * and a pressured register file. */
inline std::vector<GoldenScenario>
goldenScenarios()
{
    static const char *benchmarks[] = {"compress", "li", "gcc",
                                       "ijpeg"};
    static const char *presets[] = {"none", "idvi", "full", "dense"};
    static const unsigned regs[] = {80, 40};

    std::vector<GoldenScenario> out;
    for (const char *b : benchmarks)
        for (const char *p : presets)
            for (unsigned r : regs)
                out.push_back(GoldenScenario{b, p, r, 20000});
    return out;
}

/** Execute one golden scenario on the timing core. */
inline uarch::CoreStatsDigest
runGolden(const GoldenScenario &g)
{
    workload::BenchmarkId id = workload::BenchmarkId::Compress;
    bool found = false;
    for (workload::BenchmarkId b : workload::allBenchmarks()) {
        if (workload::benchmarkName(b) == g.benchmark) {
            id = b;
            found = true;
        }
    }
    fatal_if(!found, "unknown golden benchmark '", g.benchmark, "'");

    const std::optional<sim::DviPreset> preset =
        sim::parsePreset(g.preset);
    fatal_if(!preset, "unknown golden preset '", g.preset, "'");

    const comp::Executable exe =
        comp::compile(workload::generateBenchmark(id),
                      comp::CompileOptions{preset->edvi});

    uarch::CoreConfig cfg;
    cfg.dvi = preset->hw;
    cfg.numPhysRegs = g.numPhysRegs;
    cfg.maxInsts = g.maxInsts;
    uarch::Core core(exe, cfg);
    return uarch::digestOf(core.run());
}

} // namespace golden
} // namespace dvi

#endif // DVI_TESTS_GOLDEN_COMMON_HH
