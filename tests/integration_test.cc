/**
 * @file
 * Cross-module integration tests: the full generate -> compile ->
 * emulate -> time pipeline, plus the end-to-end properties the
 * paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "compiler/compile.hh"
#include "compiler/rewriter.hh"
#include "harness/experiment.hh"
#include "os/scheduler.hh"
#include "timing/regfile_timing.hh"
#include "uarch/core.hh"
#include "workload/benchmarks.hh"

namespace dvi
{
namespace
{

class IntegrationTest
    : public ::testing::TestWithParam<workload::BenchmarkId>
{
};

TEST_P(IntegrationTest, FullPipelineRunsClean)
{
    harness::BuiltBenchmark b = harness::buildBenchmark(GetParam());

    // Functional, strict liveness.
    arch::EmulatorOptions opts;
    opts.strictDeadReads = true;
    opts.lvmStackDepth = 16;
    arch::Emulator emu(b.edvi, opts);
    emu.run(40000);
    EXPECT_EQ(emu.stats().deadReads, 0u);

    // Timing, full DVI.
    uarch::CoreConfig cfg;
    cfg.maxInsts = 20000;
    cfg.dvi = uarch::DviConfig::full();
    uarch::Core core(b.edvi, cfg);
    const uarch::CoreStats &s = core.run();
    EXPECT_GT(s.ipc(), 0.3);
    EXPECT_LE(s.savesEliminated, s.savesSeen);
    EXPECT_LE(s.restoresEliminated, s.restoresSeen);
}

TEST_P(IntegrationTest, StackDepthBenefitIsMonotonic)
{
    harness::BuiltBenchmark b = harness::buildBenchmark(GetParam());
    std::uint64_t prev = 0;
    for (unsigned depth : {2u, 4u, 8u, 16u, 0u}) {  // 0 = unbounded
        arch::EmulatorOptions opts;
        opts.lvmStackDepth = depth;
        arch::Emulator emu(b.edvi, opts);
        emu.run(60000);
        const std::uint64_t elim = emu.stats().restoreElimOracle;
        EXPECT_GE(elim, prev) << "depth " << depth;
        prev = elim;
    }
}

TEST_P(IntegrationTest, DviPresetsOrderedByCapability)
{
    harness::BuiltBenchmark b = harness::buildBenchmark(GetParam());

    auto elim_at = [&](const sim::DviPreset &preset) {
        arch::EmulatorOptions opts;
        // A no-DVI machine has no LVM at all.
        opts.trackLiveness = preset.hw.useIdvi || preset.hw.useEdvi;
        opts.honorEdvi = preset.hw.useEdvi;
        opts.honorIdvi = preset.hw.useIdvi;
        opts.lvmStackDepth = 16;
        arch::Emulator emu(harness::exeFor(b, preset), opts);
        emu.run(60000);
        return emu.stats().saveElimOracle +
               emu.stats().restoreElimOracle;
    };

    const auto none = elim_at(sim::presetNone());
    const auto idvi = elim_at(sim::presetIdvi());
    const auto full = elim_at(sim::presetFull());
    EXPECT_EQ(none, 0u);
    // E-DVI kills callee-saved registers, which is what save/restore
    // elimination targets; I-DVI alone contributes little here but
    // must never *hurt*.
    EXPECT_GE(full, idvi);
    EXPECT_GT(full, 0u);
}

TEST_P(IntegrationTest, ContextSwitchReductionConsistent)
{
    harness::BuiltBenchmark b = harness::buildBenchmark(GetParam());
    os::SchedulerOptions so;
    so.quantum = 5000;
    so.maxTotalInsts = 60000;
    os::Scheduler sched(so);
    sched.addThread("t", b.edvi, arch::EmulatorOptions{});
    sched.run();
    const os::SwitchStats &s = sched.stats();
    ASSERT_GT(s.contextSwitches, 0u);
    // Reduction percent must match the histogram arithmetic.
    const double expected =
        100.0 *
        (1.0 - s.liveIntAtSwitch.mean() /
                   isa::contextSwitchSavedMask().count());
    // Switch-in restores use the stored LVM of the same switch, so
    // out+in pairs agree with the histogram within rounding and the
    // first-dispatch edge.
    EXPECT_NEAR(s.intReductionPercent(), expected, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, IntegrationTest,
    ::testing::ValuesIn(workload::allBenchmarks()),
    [](const auto &info) {
        return workload::benchmarkName(info.param);
    });

TEST(Integration, RegfilePerformanceModelComposition)
{
    // IPC from the core composes with the timing model into the
    // Fig. 6 metric, and DVI's peak lands at a smaller file.
    harness::BuiltBenchmark b =
        harness::buildBenchmark(workload::BenchmarkId::Gcc);
    timing::RegFileTimingModel model;

    auto perf = [&](const sim::DviPreset &preset, unsigned nregs) {
        uarch::CoreConfig cfg;
        cfg.dvi = preset.hw;
        cfg.numPhysRegs = nregs;
        cfg.maxInsts = 20000;
        uarch::Core core(harness::exeFor(b, preset), cfg);
        return model.performance(core.run().ipc(), nregs, 4);
    };

    // At a small file DVI wins on both IPC and cycle time.
    EXPECT_GT(perf(sim::presetFull(), 42),
              perf(sim::presetNone(), 42));
}

TEST(Integration, RewrittenBinaryDrivesTheCore)
{
    harness::BuiltBenchmark b =
        harness::buildBenchmark(workload::BenchmarkId::Perl);
    comp::Executable rewritten = comp::insertEdvi(b.plain);

    uarch::CoreConfig cfg;
    cfg.maxInsts = 20000;
    cfg.dvi = uarch::DviConfig::full();
    uarch::Core core(rewritten, cfg);
    const uarch::CoreStats &s = core.run();
    EXPECT_GT(s.savesEliminated, 0u);
    EXPECT_GT(s.restoresEliminated, 0u);
}

} // namespace
} // namespace dvi
