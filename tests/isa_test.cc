/**
 * @file
 * Unit tests for the ISA: calling convention masks, instruction
 * construction/classification, binary encoding, disassembly.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "isa/encoding.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace dvi
{
namespace isa
{
namespace
{

TEST(CallingConvention, CallerAndCalleeSetsDisjoint)
{
    EXPECT_TRUE((callerSavedMask() & calleeSavedMask()).empty());
}

TEST(CallingConvention, IdviIsCallerSavedTemporariesOnly)
{
    // The I-DVI mask must exclude anything that carries live values
    // across a call boundary: arguments in, return values out, and
    // the return address.
    EXPECT_TRUE(idviMask().minus(callerSavedMask()).empty());
    EXPECT_TRUE((idviMask() & argMask()).empty());
    EXPECT_TRUE((idviMask() & returnValueMask()).empty());
    EXPECT_FALSE(idviMask().test(regRa));
    EXPECT_FALSE(idviMask().test(regSp));
    EXPECT_FALSE(idviMask().test(regZero));
}

TEST(CallingConvention, AsymmetricIdviMasks)
{
    // Entry: return values dead, arguments live. Exit: arguments
    // dead, return values live (§2 "dead at the entry and exit
    // points").
    EXPECT_TRUE(idviCallMask().test(regV0));
    EXPECT_TRUE((idviCallMask() & argMask()).empty());
    EXPECT_TRUE(idviReturnMask().test(regA0));
    EXPECT_TRUE((idviReturnMask() & returnValueMask()).empty());
    // Both extend the common temporaries mask.
    EXPECT_TRUE(idviMask().minus(idviCallMask()).empty());
    EXPECT_TRUE(idviMask().minus(idviReturnMask()).empty());
    // Neither touches callee-saved state or the stack pointer.
    EXPECT_TRUE((idviCallMask() & calleeSavedMask()).empty());
    EXPECT_TRUE((idviReturnMask() & calleeSavedMask()).empty());
    EXPECT_FALSE(idviCallMask().test(regSp));
    EXPECT_FALSE(idviReturnMask().test(regSp));
}

TEST(CallingConvention, CalleeSavedContents)
{
    for (RegIndex r = 16; r <= 23; ++r)
        EXPECT_TRUE(isCalleeSaved(r)) << int(r);
    EXPECT_TRUE(isCalleeSaved(regFp));
    EXPECT_FALSE(isCalleeSaved(8));
    EXPECT_TRUE(isCallerSaved(8));
}

TEST(CallingConvention, AllocatablePoolsWithinConvention)
{
    EXPECT_TRUE(allocatableCalleeSaved()
                    .minus(calleeSavedMask())
                    .empty());
    EXPECT_TRUE(allocatableCallerSaved()
                    .minus(callerSavedMask())
                    .empty());
    EXPECT_TRUE(
        (allocatableCalleeSaved() & allocatableCallerSaved()).empty());
}

TEST(CallingConvention, ContextSwitchMaskExcludesZeroAndKernel)
{
    RegMask m = contextSwitchSavedMask();
    EXPECT_FALSE(m.test(regZero));
    EXPECT_FALSE(m.test(regK0));
    EXPECT_FALSE(m.test(regK1));
    EXPECT_EQ(m.count(), numIntRegs - 3);
}

TEST(CallingConvention, FpMasksPartition)
{
    EXPECT_TRUE((fpCallerSavedMask() & fpCalleeSavedMask()).empty());
    EXPECT_EQ((fpCallerSavedMask() | fpCalleeSavedMask()).count(),
              numFpRegs);
}

TEST(CallingConvention, RegisterNames)
{
    EXPECT_EQ(intRegName(0), "zero");
    EXPECT_EQ(intRegName(regSp), "sp");
    EXPECT_EQ(intRegName(16), "s0");
    EXPECT_EQ(intRegName(8), "t0");
    EXPECT_EQ(fpRegName(7), "f7");
}

TEST(Instruction, AluFactoryAndQueries)
{
    auto i = Instruction::alu(Opcode::Add, 3, 4, 5);
    EXPECT_TRUE(i.writesIntReg());
    EXPECT_EQ(i.destIntReg(), 3);
    RegIndex srcs[2];
    ASSERT_EQ(i.srcIntRegs(srcs), 2u);
    EXPECT_EQ(srcs[0], 4);
    EXPECT_EQ(srcs[1], 5);
    EXPECT_FALSE(i.isMem());
    EXPECT_FALSE(i.isControl());
    EXPECT_EQ(i.fuClass(), FuClass::IntAlu);
}

TEST(Instruction, MulDivUseTheMulDivUnit)
{
    EXPECT_EQ(Instruction::alu(Opcode::Mul, 1, 2, 3).fuClass(),
              FuClass::IntMulDiv);
    EXPECT_EQ(Instruction::alu(Opcode::Div, 1, 2, 3).fuClass(),
              FuClass::IntMulDiv);
    EXPECT_GT(Instruction::alu(Opcode::Div, 1, 2, 3).execLatency(),
              Instruction::alu(Opcode::Mul, 1, 2, 3).execLatency());
}

TEST(Instruction, LoadStore)
{
    auto ld = Instruction::load(5, regSp, 16);
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isMem());
    EXPECT_FALSE(ld.isStore());
    EXPECT_TRUE(ld.writesIntReg());

    auto st = Instruction::store(5, regSp, 16);
    EXPECT_TRUE(st.isStore());
    EXPECT_FALSE(st.writesIntReg());
    RegIndex srcs[2];
    EXPECT_EQ(st.srcIntRegs(srcs), 2u);
}

TEST(Instruction, SaveRestoreVariants)
{
    auto save = Instruction::liveStore(17, regSp, 8);
    EXPECT_TRUE(save.isSave());
    EXPECT_TRUE(save.isStore());
    EXPECT_EQ(save.saveRestoreReg(), 17);

    auto restore = Instruction::liveLoad(17, regSp, 8);
    EXPECT_TRUE(restore.isRestore());
    EXPECT_TRUE(restore.isLoad());
    EXPECT_EQ(restore.saveRestoreReg(), 17);
    EXPECT_TRUE(restore.writesIntReg());
}

TEST(Instruction, ControlFlow)
{
    auto br = Instruction::branch(Opcode::Beq, 1, 2, 100);
    EXPECT_TRUE(br.isCondBranch());
    EXPECT_TRUE(br.isControl());
    EXPECT_FALSE(br.writesIntReg());

    auto call = Instruction::call(200);
    EXPECT_TRUE(call.isCall());
    EXPECT_TRUE(call.writesIntReg());
    EXPECT_EQ(call.destIntReg(), regRa);

    auto ret = Instruction::ret();
    EXPECT_TRUE(ret.isReturn());
    RegIndex srcs[2];
    ASSERT_EQ(ret.srcIntRegs(srcs), 1u);
    EXPECT_EQ(srcs[0], regRa);
}

TEST(Instruction, KillCarriesMask)
{
    RegMask mask{16, 17, 23};
    auto k = Instruction::kill(mask);
    EXPECT_TRUE(k.isKill());
    EXPECT_EQ(k.killMask(), mask);
    EXPECT_FALSE(k.writesIntReg());
    EXPECT_EQ(k.fuClass(), FuClass::None);
}

TEST(InstructionDeath, KillMaskBeyondIntRegsPanics)
{
    EXPECT_DEATH((void)Instruction::kill(RegMask{40}),
                 "nonexistent");
}

TEST(Instruction, FpOps)
{
    auto f = Instruction::fadd(1, 2, 3);
    EXPECT_TRUE(f.isFp());
    EXPECT_TRUE(f.writesFpReg());
    EXPECT_FALSE(f.writesIntReg());
    RegIndex srcs[2];
    EXPECT_EQ(f.srcFpRegs(srcs), 2u);

    auto fst = Instruction::fstore(4, regSp, 0);
    EXPECT_TRUE(fst.isStore());
    EXPECT_EQ(fst.srcFpRegs(srcs), 1u);
    EXPECT_EQ(srcs[0], 4);
    EXPECT_EQ(fst.srcIntRegs(srcs), 1u);  // base only
}

TEST(Instruction, LvmSaveLoadAreMemOps)
{
    EXPECT_TRUE(Instruction::lvmSave(regSp, 0).isStore());
    EXPECT_TRUE(Instruction::lvmLoad(regSp, 0).isLoad());
}

TEST(Instruction, ClassificationsAreMutuallyConsistent)
{
    // Sweep every opcode with a representative instruction and check
    // classification invariants hold universally.
    for (unsigned op = 0;
         op < static_cast<unsigned>(Opcode::NumOpcodes); ++op) {
        Instruction i;
        i.op = static_cast<Opcode>(op);
        EXPECT_FALSE(i.isLoad() && i.isStore()) << op;
        EXPECT_LE(i.isCondBranch() + i.isCall() + i.isReturn(), 1)
            << op;
        if (i.isMem()) {
            EXPECT_EQ(i.fuClass(), FuClass::MemPort) << op;
        }
        EXPECT_GE(i.execLatency(), 1u) << op;
    }
}

TEST(Encoding, RoundTripsRandomInstructions)
{
    Rng rng(1234);
    for (int trial = 0; trial < 2000; ++trial) {
        Instruction i;
        i.op = static_cast<Opcode>(rng.below(
            static_cast<std::uint64_t>(Opcode::NumOpcodes)));
        i.rd = static_cast<RegIndex>(rng.below(32));
        i.rs1 = static_cast<RegIndex>(rng.below(32));
        i.rs2 = static_cast<RegIndex>(rng.below(32));
        i.imm = static_cast<std::int32_t>(rng.next());
        EXPECT_EQ(decode(encode(i)), i);
    }
}

TEST(Encoding, KillMaskSurvivesEncoding)
{
    auto k = Instruction::kill(RegMask{16, 22, 30});
    EXPECT_EQ(decode(encode(k)).killMask(), (RegMask{16, 22, 30}));
}

TEST(EncodingDeath, BadOpcodePanics)
{
    EXPECT_DEATH((void)decode(0xff), "invalid opcode");
}

TEST(Disasm, RepresentativeStrings)
{
    EXPECT_EQ(Instruction::alu(Opcode::Add, 2, 8, 9).toString(),
              "add v0, t0, t1");
    EXPECT_EQ(
        Instruction::aluImm(Opcode::Addi, regSp, regSp, -32)
            .toString(),
        "addi sp, sp, -32");
    EXPECT_EQ(Instruction::liveStore(16, regSp, 0).toString(),
              "live-st s0, 0(sp)");
    EXPECT_EQ(Instruction::liveLoad(16, regSp, 0).toString(),
              "live-ld s0, 0(sp)");
    EXPECT_EQ(Instruction::call(64).toString(), "call @64");
    EXPECT_EQ(Instruction::ret().toString(), "ret");
    EXPECT_EQ(Instruction::kill(RegMask{16, 17}).toString(),
              "kill {r16, r17}");
    EXPECT_EQ(Instruction::fload(3, regSp, 8).toString(),
              "fld f3, 8(sp)");
}

} // namespace
} // namespace isa
} // namespace dvi
