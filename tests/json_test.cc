/**
 * @file
 * Tests for base/json: escaping, parse/dump round trips (quotes,
 * control characters, UTF-8, large u64s), the NaN/inf emission
 * policy, positioned parse errors — plus the CSV-escaping
 * regression for CampaignReport::toCsv(), which shares the "free-
 * form strings must survive machine formats" contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "base/json.hh"
#include "driver/campaign.hh"

namespace dvi
{
namespace
{

TEST(JsonEscape, QuotesBackslashesControls)
{
    EXPECT_EQ(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(json::escape("tab\there"), "tab\\there");
    EXPECT_EQ(json::escape("cr\rlf\n"), "cr\\rlf\\n");
    EXPECT_EQ(json::escape(std::string("nul\x01soh")),
              "nul\\u0001soh");
    // Multi-byte UTF-8 passes through untouched.
    EXPECT_EQ(json::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonNumber, ShortestRoundTrip)
{
    EXPECT_EQ(json::formatDouble(0.5), "0.5");
    EXPECT_EQ(json::formatDouble(0.0), "0");
    EXPECT_EQ(json::formatDouble(0.1), "0.1");
    // The printed form parses back to the exact bits.
    for (double v : {1.0 / 3.0, 2.5e-9, 123456.789, 1e300}) {
        const std::string s = json::formatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(JsonNumber, NanAndInfEmitNull)
{
    // JSON has no NaN/inf spelling; the documented policy is null.
    EXPECT_EQ(json::formatDouble(std::nan("")), "null");
    EXPECT_EQ(json::formatDouble(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(json::formatDouble(
                  -std::numeric_limits<double>::infinity()),
              "null");
    json::Value v(std::nan(""));
    EXPECT_EQ(v.dump(), "null");
}

TEST(JsonValue, LargeU64StaysExact)
{
    // Counters overflow a double's 53-bit mantissa; u64 literals
    // must never bounce through one.
    const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
    const std::uint64_t odd = (1ull << 53) + 1;  // not a double
    json::Value v = json::Value::object();
    v.set("big", big);
    v.set("odd", odd);
    const std::string text = v.dump();
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);

    const json::ParseResult back = json::parse(text);
    ASSERT_TRUE(back.ok()) << back.error;
    ASSERT_TRUE(back.value.find("big")->isU64());
    EXPECT_EQ(back.value.find("big")->u64(), big);
    EXPECT_EQ(back.value.find("odd")->u64(), odd);
    EXPECT_EQ(back.value, v);
}

TEST(JsonValue, StringRoundTrips)
{
    for (const char *raw :
         {"plain", "quo\"te\\back", "line\nbreak\ttab\rcr",
          "ctrl\x01\x02\x1f",
          "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97", ""}) {
        const std::string s = raw;
        json::Value v(s);
        const json::ParseResult back = json::parse(v.dump());
        ASSERT_TRUE(back.ok()) << back.error;
        ASSERT_TRUE(back.value.isString());
        EXPECT_EQ(back.value.str(), s);
    }
}

TEST(JsonParse, UnicodeEscapes)
{
    const json::ParseResult r = json::parse("\"caf\\u00e9\"");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.value.str(), "caf\xc3\xa9");

    // Surrogate pair -> one 4-byte UTF-8 code point.
    const json::ParseResult emoji =
        json::parse("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(emoji.ok()) << emoji.error;
    EXPECT_EQ(emoji.value.str(), "\xf0\x9f\x98\x80");

    // Unpaired surrogates would decode to invalid UTF-8 that our
    // own emitter then propagates; they are a parse error.
    for (const char *lone :
         {"\"\\ud800\"", "\"\\ud800x\"", "\"\\udc00\"",
          "\"\\ud800\\ud800\""}) {
        const json::ParseResult bad = json::parse(lone);
        EXPECT_FALSE(bad.ok()) << lone;
        EXPECT_NE(bad.error.find("surrogate"), std::string::npos)
            << bad.error;
    }
}

TEST(JsonParse, DocumentRoundTripPreservesOrderAndTypes)
{
    json::Value doc = json::Value::object();
    doc.set("zeta", json::Value(true));
    doc.set("alpha", json::Value(std::uint64_t(7)));
    json::Value arr = json::Value::array();
    arr.push(json::Value("x"));
    arr.push(json::Value());
    arr.push(json::Value(-2.5));
    doc.set("list", std::move(arr));
    json::Value nested = json::Value::object();
    nested.set("pi", json::Value(3.25));
    doc.set("nested", std::move(nested));

    // Insertion order survives (zeta stays before alpha).
    const std::string pretty = doc.dump();
    EXPECT_LT(pretty.find("zeta"), pretty.find("alpha"));

    for (int indent : {0, 2, 4}) {
        const json::ParseResult back =
            json::parse(doc.dump(indent));
        ASSERT_TRUE(back.ok()) << back.error;
        EXPECT_EQ(back.value, doc) << "indent " << indent;
    }

    // Negative numbers parse as F64 by design.
    EXPECT_TRUE(
        doc.find("list")->items()[2].isF64());
}

TEST(JsonParse, ErrorsArePositionedAndSoft)
{
    for (const char *bad :
         {"{", "[1,]", "{\"a\" 1}", "\"unterminated", "12x", "",
          "{\"a\":1} trailing", "{\"dup\":1,\"dup\":2}",
          "\"bad\\q\""}) {
        const json::ParseResult r = json::parse(bad);
        EXPECT_FALSE(r.ok()) << bad;
        EXPECT_NE(r.error.find("line "), std::string::npos) << bad;
    }
    // The duplicate-key diagnostic names the key.
    EXPECT_NE(json::parse("{\"dup\":1,\"dup\":2}")
                  .error.find("dup"),
              std::string::npos);
}

TEST(JsonParse, DeepNestingIsASoftErrorNotACrash)
{
    // The recursion bound keeps hostile nesting from overflowing
    // the stack (parse() must never crash).
    const std::string deep(200000, '[');
    const json::ParseResult r = json::parse(deep);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("nesting"), std::string::npos)
        << r.error;

    // Reasonable nesting still parses.
    std::string ok(64, '[');
    ok += "1";
    ok += std::string(64, ']');
    EXPECT_TRUE(json::parse(ok).ok());
}

TEST(JsonParse, RejectsNonRfcNumberSpellings)
{
    for (const char *bad :
         {"01", "-01", ".5", "1.", "1.e3", "1e", "1e+", "+1",
          "0x10"}) {
        EXPECT_FALSE(json::parse(bad).ok()) << bad;
    }
    for (const char *good :
         {"0", "-0", "10", "0.5", "-0.5e+2", "1E-3",
          "1e10"}) {
        EXPECT_TRUE(json::parse(good).ok()) << good;
    }
}

TEST(JsonParse, NumbersSplitU64AndF64)
{
    const json::ParseResult r =
        json::parse("[0, 42, -1, 2.5, 1e3, 18446744073709551615]");
    ASSERT_TRUE(r.ok()) << r.error;
    const auto &items = r.value.items();
    EXPECT_TRUE(items[0].isU64());
    EXPECT_TRUE(items[1].isU64());
    EXPECT_TRUE(items[2].isF64());
    EXPECT_EQ(items[2].number(), -1.0);
    EXPECT_TRUE(items[3].isF64());
    EXPECT_TRUE(items[4].isF64());
    EXPECT_EQ(items[4].number(), 1000.0);
    EXPECT_TRUE(items[5].isU64());
}

TEST(CampaignReportCsv, EscapesFreeFormCells)
{
    // Labels are free-form; a comma or quote must not shift CSV
    // columns (regression: renderCsv used to emit cells verbatim).
    driver::Campaign c("csv-escape");
    sim::Scenario s;
    s.runner = "oracle";
    s.workload = workload::BenchmarkId::Li;
    s.budget.maxInsts = 500;
    s.label = "depth=2,mode=\"full\"";
    c.add(s);

    const driver::CampaignReport report =
        c.run(driver::CampaignOptions{1});
    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("\"depth=2,mode=\"\"full\"\"\""),
              std::string::npos)
        << csv;

    // Unquoted commas only separate real columns: the header and
    // the row agree on the column count.
    const auto columns = [](const std::string &line) {
        std::size_t n = 1;
        bool quoted = false;
        for (char ch : line) {
            if (ch == '"')
                quoted = !quoted;
            else if (ch == ',' && !quoted)
                ++n;
        }
        return n;
    };
    const std::size_t header_end = csv.find('\n');
    const std::size_t row_end = csv.find('\n', header_end + 1);
    ASSERT_NE(row_end, std::string::npos);
    EXPECT_EQ(columns(csv.substr(0, header_end)),
              columns(csv.substr(header_end + 1,
                                 row_end - header_end - 1)));
}

} // namespace
} // namespace dvi
