/**
 * @file
 * Unit tests for virtual-register liveness analysis.
 */

#include <gtest/gtest.h>

#include "compiler/liveness.hh"
#include "program/ir.hh"

namespace dvi
{
namespace comp
{
namespace
{

using namespace prog;

TEST(IrUsesDefs, PerOpcode)
{
    EXPECT_EQ(irDef(irAlu(IrOp::Add, 3, 1, 2)), 3u);
    EXPECT_EQ(irUses(irAlu(IrOp::Add, 3, 1, 2)),
              (std::vector<VReg>{1, 2}));
    EXPECT_EQ(irDef(irLoadImm(4, 9)), 4u);
    EXPECT_TRUE(irUses(irLoadImm(4, 9)).empty());
    EXPECT_EQ(irUses(irStore(1, 2, 0)), (std::vector<VReg>{1, 2}));
    EXPECT_EQ(irDef(irStore(1, 2, 0)), noVReg);
    EXPECT_EQ(irUses(irCall(0, {5, 6}, 7)),
              (std::vector<VReg>{5, 6}));
    EXPECT_EQ(irDef(irCall(0, {5, 6}, 7)), 7u);
    EXPECT_EQ(irUses(irRet(3)), (std::vector<VReg>{3}));
    EXPECT_TRUE(irUses(irRet()).empty());
    EXPECT_EQ(irUses(irBranch(IrOp::Blt, 1, 2, 0)),
              (std::vector<VReg>{1, 2}));
    EXPECT_EQ(irUses(irStoreStack(4, 0)), (std::vector<VReg>{4}));
    EXPECT_EQ(irDef(irLoadStack(4, 0)), 4u);
}

TEST(Liveness, StraightLine)
{
    // b0: v1 = imm; v2 = imm; v3 = v1+v2; ret v3
    Procedure p;
    VReg v1 = p.newVReg(), v2 = p.newVReg(), v3 = p.newVReg();
    int b0 = p.newBlock();
    p.emit(b0, irLoadImm(v1, 1));
    p.emit(b0, irLoadImm(v2, 2));
    p.emit(b0, irAlu(IrOp::Add, v3, v1, v2));
    p.emit(b0, irRet(v3));

    Liveness live = computeLiveness(p);
    EXPECT_FALSE(live.liveIn[0].test(v1));  // defined locally
    EXPECT_TRUE(live.liveOut[0] == DynBitset(live.numVRegs));

    auto after = liveAfterPerInst(p, live, 0);
    EXPECT_TRUE(after[0].test(v1));   // v1 live until the add
    EXPECT_FALSE(after[2].test(v1));  // dead after the add
    EXPECT_TRUE(after[2].test(v3));   // v3 live into the ret
}

TEST(Liveness, DiamondKeepsValueLiveOnBothArms)
{
    // b0: v1=..; branch -> b2 ; b1: use v1, jump b3 ; b2: use v1 ;
    // b3: ret
    Procedure p;
    VReg v1 = p.newVReg(), z = p.newVReg(), t1 = p.newVReg(),
         t2 = p.newVReg();
    int b0 = p.newBlock();
    int b1 = p.newBlock();
    int b2 = p.newBlock();
    int b3 = p.newBlock();
    p.emit(b0, irLoadImm(v1, 5));
    p.emit(b0, irLoadImm(z, 0));
    p.emit(b0, irBranch(IrOp::Beq, v1, z, b2));
    p.emit(b1, irAluImm(IrOp::AddImm, t1, v1, 1));
    p.emit(b1, irJump(b3));
    p.emit(b2, irAluImm(IrOp::AddImm, t2, v1, 2));
    p.emit(b3, irRet());

    Liveness live = computeLiveness(p);
    EXPECT_TRUE(live.liveOut[0].test(v1));
    EXPECT_TRUE(live.liveIn[1].test(v1));
    EXPECT_TRUE(live.liveIn[2].test(v1));
    EXPECT_FALSE(live.liveIn[3].test(v1));
}

TEST(Liveness, LoopCarriesValueAroundBackedge)
{
    // b0: i=n; z=0 ; b1: i=i-1; bne i,z,b1 ; b2: ret
    Procedure p;
    VReg i = p.newVReg(), z = p.newVReg();
    int b0 = p.newBlock();
    int b1 = p.newBlock();
    int b2 = p.newBlock();
    p.emit(b0, irLoadImm(i, 10));
    p.emit(b0, irLoadImm(z, 0));
    p.emit(b1, irAluImm(IrOp::AddImm, i, i, -1));
    p.emit(b1, irBranch(IrOp::Bne, i, z, b1));
    p.emit(b2, irRet());

    Liveness live = computeLiveness(p);
    // i and z are live around the loop.
    EXPECT_TRUE(live.liveIn[1].test(i));
    EXPECT_TRUE(live.liveOut[1].test(i));
    EXPECT_TRUE(live.liveIn[1].test(z));
    // Nothing is live into the procedure.
    EXPECT_FALSE(live.liveIn[0].test(i));
}

TEST(Liveness, DeadDefIsNotLive)
{
    Procedure p;
    VReg v = p.newVReg();
    int b0 = p.newBlock();
    p.emit(b0, irLoadImm(v, 1));  // never used
    p.emit(b0, irRet());

    Liveness live = computeLiveness(p);
    auto after = liveAfterPerInst(p, live, 0);
    EXPECT_FALSE(after[0].test(v));
}

TEST(Liveness, CallArgsAreUses)
{
    Procedure p;
    VReg a = p.newVReg(), r = p.newVReg();
    int b0 = p.newBlock();
    p.emit(b0, irLoadImm(a, 3));
    p.emit(b0, irCall(0, {a}, r));
    p.emit(b0, irRet(r));

    Liveness live = computeLiveness(p);
    auto after = liveAfterPerInst(p, live, 0);
    EXPECT_TRUE(after[0].test(a));   // live into the call
    EXPECT_FALSE(after[1].test(a));  // dead after (last use)
    EXPECT_TRUE(after[1].test(r));
}

} // namespace
} // namespace comp
} // namespace dvi
