/**
 * @file
 * Tests for the manifest layer: field bindings over scenarios,
 * sparse JSON round trips, the emit -> load -> run byte-identity
 * contract for every registered scenario, declarative axes grids,
 * report-as-manifest provenance, and the diagnostics malformed
 * manifests must produce (the offending dotted path, softly).
 */

#include <gtest/gtest.h>

#include <string>

#include "base/fields.hh"
#include "driver/campaign.hh"
#include "driver/scenario_registry.hh"
#include "sim/manifest.hh"

namespace dvi
{
namespace
{

TEST(ScenarioFields, DottedPathOverridesSetTypedFields)
{
    sim::Scenario s;
    fields::FieldSet fs = sim::scenarioFields(s);

    EXPECT_EQ(fs.applyString("hardware.core.windowSize", "128"), "");
    EXPECT_EQ(s.hardware.core.windowSize, 128u);
    EXPECT_EQ(fs.applyString("binary.edvi", "dense"), "");
    EXPECT_EQ(s.binary.edvi, comp::EdviPolicy::Dense);
    EXPECT_EQ(fs.applyString("budget.maxInsts", "123456789"), "");
    EXPECT_EQ(s.budget.maxInsts, 123456789u);
    EXPECT_EQ(fs.applyString("hardware.dvi.earlyReclaim", "false"),
              "");
    EXPECT_FALSE(s.hardware.dvi.earlyReclaim);
    EXPECT_EQ(fs.applyString("workload", "gcc"), "");
    EXPECT_EQ(s.workload, workload::BenchmarkId::Gcc);
    EXPECT_EQ(fs.applyString("label", "my-row"), "");
    EXPECT_EQ(s.label, "my-row");

    // `preset` expands both axes, exactly like applyPreset.
    EXPECT_EQ(fs.applyString("preset", "dense"), "");
    EXPECT_EQ(s.preset, "dense");
    EXPECT_EQ(s.binary.edvi, comp::EdviPolicy::Dense);
    EXPECT_TRUE(s.hardware.dvi.useEdvi);

    // Errors are soft and name the path.
    const std::string unknown =
        fs.applyString("hardware.core.windoSize", "1");
    EXPECT_NE(unknown.find("hardware.core.windoSize"),
              std::string::npos);
    EXPECT_NE(unknown.find("unknown"), std::string::npos);
    EXPECT_NE(fs.applyString("hardware.core.windowSize", "soon")
                  .find("unsigned integer"),
              std::string::npos);
    EXPECT_NE(fs.applyString("binary.edvi", "sparse")
                  .find("callsites"),
              std::string::npos);
    EXPECT_NE(fs.applyString("runner", "warp-drive")
                  .find("warp-drive"),
              std::string::npos);
    // Out-of-range for a 32-bit unsigned field.
    EXPECT_NE(fs.applyString("hardware.core.windowSize",
                             "4294967296")
                  .find("out of range"),
              std::string::npos);
}

TEST(ScenarioJson, SparseDiffRoundTripsDeviationsFromPreset)
{
    // fig10's "lvm" row: preset full, then two deviations — one of
    // which (elimRestores=false) matches the *built-in* default, so
    // only a preset-aware diff baseline keeps it in the document.
    sim::Scenario s;
    s.runner = "timing";
    s.workload = workload::BenchmarkId::Perl;
    s.budget.maxInsts = 4000;
    sim::applyPreset(s, sim::presetFull());
    s.hardware.dvi = uarch::DviConfig::lvmScheme();
    s.hardware.dvi.earlyReclaim = false;

    const json::Value diff = sim::scenarioToJsonDiff(s);
    sim::Scenario back;
    ASSERT_EQ(sim::scenarioFromJson(diff, back), "");
    EXPECT_EQ(sim::scenarioToJson(back), sim::scenarioToJson(s));
    EXPECT_FALSE(back.hardware.dvi.elimRestores);
    EXPECT_FALSE(back.hardware.dvi.earlyReclaim);
    EXPECT_EQ(back.preset, "full");
}

TEST(ScenarioJson, DiffAlwaysNamesRunnerAndWorkload)
{
    const sim::Scenario s;  // everything default
    const json::Value diff = sim::scenarioToJsonDiff(s);
    ASSERT_NE(diff.find("runner"), nullptr);
    EXPECT_EQ(diff.find("runner")->str(), "timing");
    ASSERT_NE(diff.find("workload"), nullptr);
    EXPECT_EQ(diff.find("workload")->str(), "compress");
}

TEST(Manifest, EmitLoadRunIsByteIdenticalForEveryScenario)
{
    // The acceptance criterion: for every registered scenario,
    // emit-manifest -> load -> run reproduces the registry-direct
    // report byte for byte (profiling off on both sides; profiled
    // reports are documented as not byte-stable).
    for (const std::string &name :
         driver::ScenarioRegistry::instance().names()) {
        const driver::RegisteredScenario &entry =
            driver::scenarioFor(name);
        const std::uint64_t insts = 600;

        const driver::Campaign direct = entry.build(insts);
        sim::CampaignManifest emitted =
            driver::scenarioManifest(entry, insts);
        EXPECT_EQ(emitted.profile, entry.profile) << name;

        sim::CampaignManifest loaded;
        ASSERT_EQ(sim::manifestFromJson(
                      sim::manifestToJson(emitted), loaded),
                  "")
            << name;
        ASSERT_EQ(loaded.scenarios.size(), direct.size()) << name;
        for (std::size_t i = 0; i < loaded.scenarios.size(); ++i)
            ASSERT_EQ(sim::scenarioToJson(loaded.scenarios[i]),
                      sim::scenarioToJson(
                          direct.jobs()[i].scenario))
                << name << " job " << i;

        const driver::Campaign replay(loaded.name,
                                      loaded.scenarios);
        driver::CampaignOptions opts;
        opts.jobs = 4;
        EXPECT_EQ(replay.run(opts).toJson(),
                  direct.run(opts).toJson())
            << name;
    }
}

TEST(Manifest, ReportsAreRunnableArtifacts)
{
    // A report embeds each job's resolved scenario; feeding the
    // report back through the manifest loader reproduces it.
    const driver::Campaign original =
        driver::scenarioFor("fig10").build(800);
    const driver::CampaignReport report =
        original.run(driver::CampaignOptions{2});

    sim::CampaignManifest m;
    ASSERT_EQ(sim::manifestFromJson(report.toJson(), m), "");
    EXPECT_EQ(m.name, "fig10");
    ASSERT_EQ(m.scenarios.size(), original.size());
    const driver::Campaign replay(m.name, m.scenarios);
    EXPECT_EQ(replay.run(driver::CampaignOptions{1}).toJson(),
              report.toJson());
}

TEST(Manifest, AxesExpandFirstDeclaredOutermost)
{
    const std::string text = R"({
      "campaign": "grid",
      "defaults": {"runner": "timing", "budget": {"maxInsts": 1000}},
      "axes": [
        {"path": "hardware.core.numPhysRegs", "values": [40, 56],
         "label": true},
        {"path": "preset", "values": ["none", "full"], "label": true}
      ]
    })";
    sim::CampaignManifest m;
    ASSERT_EQ(sim::manifestFromJson(text, m), "");
    EXPECT_EQ(m.name, "grid");
    ASSERT_EQ(m.scenarios.size(), 4u);
    EXPECT_EQ(m.scenarios[0].hardware.core.numPhysRegs, 40u);
    EXPECT_EQ(m.scenarios[0].preset, "none");
    EXPECT_EQ(m.scenarios[0].label, "40-none");
    EXPECT_EQ(m.scenarios[1].label, "40-full");
    EXPECT_EQ(m.scenarios[1].binary.edvi,
              comp::EdviPolicy::CallSites);
    EXPECT_EQ(m.scenarios[2].label, "56-none");
    EXPECT_EQ(m.scenarios[3].hardware.core.numPhysRegs, 56u);
    for (const sim::Scenario &s : m.scenarios)
        EXPECT_EQ(s.budget.maxInsts, 1000u);
}

TEST(Manifest, MalformedDocumentsNameTheDottedPath)
{
    sim::CampaignManifest m;

    // Unknown key, deep in the tree.
    std::string err = sim::manifestFromJson(
        R"({"jobs": [{"hardware": {"core": {"windoSize": 64}}}]})",
        m);
    EXPECT_NE(err.find("jobs[0].hardware.core.windoSize"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("unknown"), std::string::npos) << err;

    // Wrong type.
    err = sim::manifestFromJson(
        R"({"jobs": [{"hardware": {"core": {"windowSize": "big"}}}]})",
        m);
    EXPECT_NE(err.find("hardware.core.windowSize"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("unsigned integer"), std::string::npos)
        << err;

    // Bad enum token lists the valid spellings.
    err = sim::manifestFromJson(
        R"({"jobs": [{"binary": {"edvi": "sparse"}}]})", m);
    EXPECT_NE(err.find("jobs[0].binary.edvi"), std::string::npos)
        << err;
    EXPECT_NE(err.find("callsites"), std::string::npos) << err;

    // Bad preset token.
    err = sim::manifestFromJson(
        R"({"defaults": {"preset": "mega"}})", m);
    EXPECT_NE(err.find("defaults.preset"), std::string::npos)
        << err;

    // Out-of-range narrowing.
    err = sim::manifestFromJson(
        R"({"jobs": [{"hardware": {"core":
            {"windowSize": 4294967296}}}]})",
        m);
    EXPECT_NE(err.find("hardware.core.windowSize"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    // Axes naming an unknown path.
    err = sim::manifestFromJson(
        R"({"axes": [{"path": "hardware.core.windoSize",
                      "values": [1]}]})",
        m);
    EXPECT_NE(err.find("axes[0].path"), std::string::npos) << err;
    EXPECT_NE(err.find("hardware.core.windoSize"),
              std::string::npos)
        << err;

    // Mutually exclusive job sources.
    err = sim::manifestFromJson(
        R"({"jobs": [], "axes": []})", m);
    EXPECT_NE(err.find("mutually exclusive"), std::string::npos)
        << err;

    // A misspelled job source must not silently degrade into the
    // single-defaults campaign.
    err = sim::manifestFromJson(R"({"Jobs": [{}]})", m);
    EXPECT_NE(err.find("Jobs"), std::string::npos) << err;
    EXPECT_NE(err.find("unknown"), std::string::npos) << err;

    // defaults cannot retro-apply to a report's embedded scenarios.
    err = sim::manifestFromJson(
        R"({"defaults": {"budget": {"maxInsts": 3000}},
            "results": []})",
        m);
    EXPECT_NE(err.find("defaults"), std::string::npos) << err;

    // Unparsable JSON stays a soft, positioned error.
    err = sim::manifestFromJson("{\"jobs\": [", m);
    EXPECT_NE(err.find("line "), std::string::npos) << err;
}

TEST(Manifest, DefaultsAloneMakeASingleJob)
{
    sim::CampaignManifest m;
    ASSERT_EQ(sim::manifestFromJson(
                  R"({"campaign": "one",
                      "defaults": {"runner": "oracle",
                                   "workload": "li",
                                   "budget": {"maxInsts": 2000}}})",
                  m),
              "");
    ASSERT_EQ(m.scenarios.size(), 1u);
    EXPECT_EQ(m.scenarios[0].runner, "oracle");
    EXPECT_EQ(m.scenarios[0].workload, workload::BenchmarkId::Li);
    EXPECT_EQ(m.scenarios[0].budget.maxInsts, 2000u);
}

} // namespace
} // namespace dvi
