/**
 * @file
 * Cache model tests: hit/miss behavior, LRU replacement, hierarchy
 * latencies.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace dvi
{
namespace mem
{
namespace
{

CacheParams
tiny(unsigned assoc = 2)
{
    // 4 sets x assoc x 64B lines.
    CacheParams p;
    p.name = "tiny";
    p.lineBytes = 64;
    p.assoc = assoc;
    p.sizeBytes = 4 * assoc * 64;
    p.hitLatency = 1;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1038, false));  // same 64B line
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(tiny());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.accesses(), 0u);
    c.access(0x2000, false);
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tiny(2));  // 2-way, 4 sets
    // Three lines mapping to set 0 (line addresses multiples of 4).
    const Addr a = 0 * 64, b = 4 * 64, d = 8 * 64;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);   // a most recent
    c.access(d, false);   // evicts b (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache c(tiny(4));  // 4-way
    for (int i = 0; i < 4; ++i)
        c.access(static_cast<Addr>(i) * 4 * 64, false);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(c.probe(static_cast<Addr>(i) * 4 * 64));
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c(tiny(1));
    c.access(0, false);
    c.access(4 * 64, false);  // same set, evicts
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tiny());
    c.access(0, false);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, MissRate)
{
    Cache c(tiny());
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

TEST(Cache, WritesAllocate)
{
    Cache c(tiny());
    c.access(0x40, true);
    EXPECT_TRUE(c.probe(0x40));
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    CacheParams p;
    p.sizeBytes = 1024;  // 16 lines: not divisible by 3 ways
    p.assoc = 3;
    p.lineBytes = 64;
    EXPECT_DEATH(Cache c(p), "");
}

TEST(Hierarchy, LatenciesCascade)
{
    CacheParams il1{"il1", 1024, 2, 64, 1};
    CacheParams dl1{"dl1", 1024, 2, 64, 1};
    CacheParams l2{"l2", 8192, 4, 64, 8};
    MemoryHierarchy mh(il1, dl1, l2, 60);

    // Cold: both L1 and L2 miss -> memory latency.
    EXPECT_EQ(mh.dataAccess(0x8000, false), 60u);
    // L2 filled by the miss -> L2 latency after an L1 eviction...
    // same line: L1 now holds it -> hit latency.
    EXPECT_EQ(mh.dataAccess(0x8000, false), 1u);

    // Instruction side has its own L1 but shares the L2: IL1 cold
    // miss, L2 hit.
    EXPECT_EQ(mh.instAccess(0x8000), 8u);
}

TEST(Hierarchy, L2SharedBetweenSides)
{
    CacheParams il1{"il1", 1024, 2, 64, 1};
    CacheParams dl1{"dl1", 1024, 2, 64, 1};
    CacheParams l2{"l2", 8192, 4, 64, 8};
    MemoryHierarchy mh(il1, dl1, l2, 60);
    mh.dataAccess(0x4000, false);           // fills L2 (and DL1)
    EXPECT_EQ(mh.instAccess(0x4000), 8u);   // IL1 miss, L2 hit
}

} // namespace
} // namespace mem
} // namespace dvi
