/**
 * @file
 * Tests for the observability layer (src/obs/): NDJSON stream
 * well-formedness, wall-clock field isolation, metric shard
 * aggregation, phase tracing, log mirroring — and the headline
 * guarantee that attaching telemetry changes a campaign report by
 * zero bytes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "driver/campaign.hh"
#include "fuzz/campaign.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace dvi
{
namespace
{

sim::Scenario
timingScenario(workload::BenchmarkId id, const sim::DviPreset &preset,
               std::uint64_t insts)
{
    sim::Scenario s;
    s.runner = "timing";
    s.workload = id;
    s.budget.maxInsts = insts;
    sim::applyPreset(s, preset);
    return s;
}

driver::Campaign
smallCampaign(std::uint64_t insts = 5000)
{
    driver::Campaign c("obs-test-campaign");
    for (auto id :
         {workload::BenchmarkId::Li, workload::BenchmarkId::Perl})
        for (const sim::DviPreset &preset : sim::paperPresets())
            c.add(timingScenario(id, preset, insts));
    return c;
}

/** Collect a sink's events as deep-copied (kind, job, payload)
 * records via an observer. */
struct Capture
{
    struct Rec
    {
        double ts;
        std::uint64_t seq;
        std::string kind;
        std::uint64_t job;
        json::Value payload;
    };
    std::vector<Rec> events;

    void
    attach(obs::TelemetrySink &sink)
    {
        sink.addObserver([this](const obs::Event &e) {
            events.push_back(
                {e.ts, e.seq, e.kind, e.job, *e.payload});
        });
    }

    std::size_t
    count(const std::string &kind) const
    {
        std::size_t n = 0;
        for (const Rec &r : events)
            n += r.kind == kind;
        return n;
    }
};

/** Run the NDJSON capture of one file-backed campaign. */
std::string
runCampaignToNdjson(unsigned jobs)
{
    const std::string path =
        testing::TempDir() + "obs_test_telemetry.ndjson";
    {
        auto sink = obs::TelemetrySink::open(path);
        driver::CampaignOptions copts;
        copts.jobs = jobs;
        copts.telemetry = sink.get();
        smallCampaign().run(copts);
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    return text;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        EXPECT_NE(nl, std::string::npos)
            << "stream does not end in a newline";
        if (nl == std::string::npos)
            break;
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

bool
isWallClockField(const std::string &name)
{
    for (std::size_t i = 0; i < obs::kNumWallClockFields; ++i)
        if (name == obs::kWallClockFields[i])
            return true;
    return false;
}

/** Copy of an event object with ts and the wall-clock payload
 * fields removed — the deterministic residue. */
json::Value
normalized(const json::Value &event)
{
    json::Value out = json::Value::object();
    for (const auto &m : event.members())
        if (m.first != "ts" && !isWallClockField(m.first))
            out.set(m.first, m.second);
    return out;
}

TEST(Telemetry, EveryLineParsesWithEnvelope)
{
    const std::string text = runCampaignToNdjson(2);
    const std::vector<std::string> lines = splitLines(text);
    ASSERT_FALSE(lines.empty());

    const std::set<std::string> known = {
        "campaign-begin", "job-begin", "job-end", "progress",
        "campaign-end", "phase-begin", "phase-end", "core-sample",
        "metrics", "fuzz-begin", "fuzz-verdict", "fuzz-end", "log"};

    double prev_ts = 0.0;
    std::uint64_t expect_seq = 0;
    for (const std::string &line : lines) {
        const json::ParseResult r = json::parse(line);
        ASSERT_TRUE(r.ok()) << r.error << "\nline: " << line;
        const json::Value &e = r.value;
        ASSERT_TRUE(e.isObject());

        const json::Value *ts = e.find("ts");
        ASSERT_NE(ts, nullptr);
        const double t = ts->number();
        EXPECT_GE(t, prev_ts) << "ts went backwards";
        prev_ts = t;

        const json::Value *seq = e.find("seq");
        ASSERT_NE(seq, nullptr);
        ASSERT_TRUE(seq->isU64());
        EXPECT_EQ(seq->u64(), expect_seq) << "seq not gapless";
        ++expect_seq;

        const json::Value *kind = e.find("kind");
        ASSERT_NE(kind, nullptr);
        ASSERT_TRUE(kind->isString());
        EXPECT_TRUE(known.count(kind->str()))
            << "unknown kind " << kind->str();
    }
}

TEST(Telemetry, PerKindRequiredFields)
{
    const std::string text = runCampaignToNdjson(2);
    const std::uint64_t kJobs = smallCampaign().size();
    std::size_t begins = 0, job_ends = 0, ends = 0;
    for (const std::string &line : splitLines(text)) {
        const json::ParseResult r = json::parse(line);
        ASSERT_TRUE(r.ok()) << r.error;
        const json::Value &e = r.value;
        const std::string kind = e.find("kind")->str();
        if (kind == "campaign-begin") {
            ++begins;
            ASSERT_NE(e.find("campaign"), nullptr);
            ASSERT_NE(e.find("jobs"), nullptr);
            ASSERT_NE(e.find("workers"), nullptr);
            EXPECT_EQ(e.find("jobs")->u64(), kJobs);
        } else if (kind == "job-begin") {
            ASSERT_NE(e.find("job"), nullptr);
            ASSERT_NE(e.find("benchmark"), nullptr);
            ASSERT_NE(e.find("preset"), nullptr);
            ASSERT_NE(e.find("runner"), nullptr);
        } else if (kind == "job-end") {
            ++job_ends;
            ASSERT_NE(e.find("job"), nullptr);
            ASSERT_NE(e.find("insts"), nullptr);
            ASSERT_NE(e.find("wallSeconds"), nullptr);
            ASSERT_NE(e.find("instsPerSec"), nullptr);
        } else if (kind == "progress") {
            ASSERT_NE(e.find("done"), nullptr);
            ASSERT_NE(e.find("total"), nullptr);
            EXPECT_EQ(e.find("total")->u64(), kJobs);
        } else if (kind == "campaign-end") {
            ++ends;
            ASSERT_NE(e.find("cacheHits"), nullptr);
            ASSERT_NE(e.find("cacheMisses"), nullptr);
            // Every job does exactly one cache get, so hits +
            // misses must equal the job count.
            EXPECT_EQ(e.find("cacheHits")->u64() +
                          e.find("cacheMisses")->u64(),
                      kJobs);
        } else if (kind == "phase-end") {
            ASSERT_NE(e.find("phase"), nullptr);
            ASSERT_NE(e.find("durationSeconds"), nullptr);
        }
    }
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
    EXPECT_EQ(job_ends, kJobs);
}

TEST(Telemetry, ContentDeterministicAfterWallClockNormalization)
{
    // Serial runs emit in a deterministic order, so after dropping
    // ts and the wall-clock payload fields the two streams must be
    // byte-identical.
    const std::string a = runCampaignToNdjson(1);
    const std::string b = runCampaignToNdjson(1);
    std::string norm_a, norm_b;
    for (const std::string &line : splitLines(a))
        norm_a += normalized(json::parse(line).value).dump(0) + "\n";
    for (const std::string &line : splitLines(b))
        norm_b += normalized(json::parse(line).value).dump(0) + "\n";
    EXPECT_EQ(norm_a, norm_b);
    EXPECT_NE(a, b) << "two runs' raw streams sharing every "
                       "wall-clock timestamp is vanishingly "
                       "unlikely; is ts stuck at zero?";
}

TEST(Telemetry, ReportByteIdenticalWithTelemetryOn)
{
    const driver::Campaign campaign = smallCampaign();
    driver::CampaignOptions plain;
    plain.jobs = 2;
    const std::string without = campaign.run(plain).toJson();

    auto sink = std::make_unique<obs::TelemetrySink>();
    Capture cap;
    cap.attach(*sink);
    obs::setGlobalSink(sink.get());
    obs::setCoreSampleInsts(1000);
    driver::CampaignOptions wired;
    wired.jobs = 2;
    wired.telemetry = sink.get();
    obs::MetricRegistry metrics;
    wired.metrics = &metrics;
    const std::string with = campaign.run(wired).toJson();
    obs::setGlobalSink(nullptr);
    obs::setCoreSampleInsts(0);

    EXPECT_EQ(without, with);
    // The instrumented run must actually have observed something —
    // including mid-run core samples (5000-inst jobs sampled every
    // 1000 insts).
    EXPECT_GT(cap.count("core-sample"), 0u);
    EXPECT_EQ(cap.count("job-end"), campaign.size());
}

TEST(Telemetry, ObserverSeesStructuredEvents)
{
    obs::TelemetrySink sink;
    Capture cap;
    cap.attach(sink);

    json::Value p = json::Value::object();
    p.set("answer", std::uint64_t{42});
    sink.event("progress", p);
    sink.event("job-begin", 7, json::Value::object());

    ASSERT_EQ(cap.events.size(), 2u);
    EXPECT_EQ(cap.events[0].kind, "progress");
    EXPECT_EQ(cap.events[0].seq, 0u);
    EXPECT_EQ(cap.events[0].job, obs::noJob);
    ASSERT_NE(cap.events[0].payload.find("answer"), nullptr);
    EXPECT_EQ(cap.events[0].payload.find("answer")->u64(), 42u);
    EXPECT_EQ(cap.events[1].kind, "job-begin");
    EXPECT_EQ(cap.events[1].seq, 1u);
    EXPECT_EQ(cap.events[1].job, 7u);
    EXPECT_EQ(sink.eventCount(), 2u);
}

TEST(Telemetry, JobFieldSerializedOnlyWhenPresent)
{
    const std::string path =
        testing::TempDir() + "obs_test_job.ndjson";
    {
        auto sink = obs::TelemetrySink::open(path);
        sink->event("progress", json::Value::object());
        sink->event("job-begin", 3, json::Value::object());
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[512];
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_EQ(std::strstr(buf, "\"job\""), nullptr);
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_NE(std::strstr(buf, "\"job\": 3"), nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Metrics, SnapshotEqualsPerThreadShardSums)
{
    obs::MetricRegistry reg;
    const obs::MetricId a = reg.counter("test.a");
    const obs::MetricId b = reg.counter("test.b");

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, a, b, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                reg.add(a);
                reg.add(b, t + 1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const obs::MetricRegistry::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "test.a");
    EXPECT_EQ(snap.counters[0].second, kThreads * kPerThread);
    EXPECT_EQ(snap.counters[1].first, "test.b");
    // Sum over t of kPerThread * (t + 1).
    EXPECT_EQ(snap.counters[1].second,
              kPerThread * (kThreads * (kThreads + 1) / 2));
}

TEST(Metrics, GaugesHistogramsAndJsonShape)
{
    obs::MetricRegistry reg;
    const obs::MetricId g = reg.gauge("test.depth");
    const obs::MetricId h = reg.histogram("test.lat");
    reg.set(g, 5);
    reg.set(g, 3);
    reg.record(h, 10);
    reg.record(h, 20);

    const json::Value snap = reg.snapshotJson();
    const json::Value *gauges = snap.find("gauges");
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(gauges->find("test.depth"), nullptr);
    EXPECT_EQ(gauges->find("test.depth")->u64(), 3u);
    const json::Value *hists = snap.find("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Value *lat = hists->find("test.lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("samples")->u64(), 2u);
    EXPECT_EQ(lat->find("sum")->u64(), 30u);
    EXPECT_EQ(lat->find("min")->u64(), 10u);
    EXPECT_EQ(lat->find("max")->u64(), 20u);
    EXPECT_DOUBLE_EQ(lat->find("mean")->f64(), 15.0);
}

TEST(Metrics, InterningFindsExistingIds)
{
    obs::MetricRegistry reg;
    EXPECT_EQ(reg.counter("x"), reg.counter("x"));
    EXPECT_NE(reg.counter("x"), reg.counter("y"));
}

TEST(Metrics, FlushEmitsOneMetricsEvent)
{
    obs::TelemetrySink sink;
    Capture cap;
    cap.attach(sink);
    obs::MetricRegistry reg;
    reg.add(reg.counter("n"), 2);
    reg.flush(sink);
    ASSERT_EQ(cap.count("metrics"), 1u);
    const json::Value &p = cap.events.back().payload;
    ASSERT_NE(p.find("counters"), nullptr);
    EXPECT_EQ(p.find("counters")->find("n")->u64(), 2u);
}

TEST(Trace, SpanEmitsBeginAndEndWithAnnotations)
{
    obs::TelemetrySink sink;
    Capture cap;
    cap.attach(sink);
    {
        json::Value begin = json::Value::object();
        begin.set("benchmark", "li");
        obs::PhaseSpan span(&sink, "compile", 4, std::move(begin));
        span.annotate("textBytes", std::uint64_t{128});
    }
    ASSERT_EQ(cap.events.size(), 2u);
    EXPECT_EQ(cap.events[0].kind, "phase-begin");
    EXPECT_EQ(cap.events[0].job, 4u);
    EXPECT_EQ(cap.events[0].payload.find("phase")->str(), "compile");
    EXPECT_EQ(cap.events[0].payload.find("benchmark")->str(), "li");
    EXPECT_EQ(cap.events[1].kind, "phase-end");
    EXPECT_EQ(cap.events[1].payload.find("phase")->str(), "compile");
    ASSERT_NE(cap.events[1].payload.find("durationSeconds"),
              nullptr);
    EXPECT_EQ(cap.events[1].payload.find("textBytes")->u64(), 128u);
}

TEST(Trace, NullSinkSpanIsNoop)
{
    obs::PhaseSpan span(nullptr, "compile");
    span.annotate("k", std::uint64_t{1});
    EXPECT_GE(span.elapsedSeconds(), 0.0);
}

TEST(Trace, JobScopeNestsAndRestores)
{
    EXPECT_EQ(obs::currentJob(), obs::noJob);
    {
        obs::JobScope outer(3);
        EXPECT_EQ(obs::currentJob(), 3u);
        {
            obs::JobScope inner(9);
            EXPECT_EQ(obs::currentJob(), 9u);
        }
        EXPECT_EQ(obs::currentJob(), 3u);
    }
    EXPECT_EQ(obs::currentJob(), obs::noJob);
}

TEST(Telemetry, GlobalSinkMirrorsWarningsAsLogEvents)
{
    obs::TelemetrySink sink;
    Capture cap;
    cap.attach(sink);
    obs::setGlobalSink(&sink);
    warn("obs_test mirror check");
    obs::setGlobalSink(nullptr);
    warn("not mirrored");

    ASSERT_EQ(cap.count("log"), 1u);
    const json::Value &p = cap.events.back().payload;
    EXPECT_EQ(p.find("level")->str(), "warn");
    EXPECT_NE(p.find("message")->str().find("mirror check"),
              std::string::npos);
}

TEST(Progress, RendersFromProgressEvents)
{
    const std::string path =
        testing::TempDir() + "obs_test_progress.txt";
    std::FILE *out = std::fopen(path.c_str(), "w+b");
    ASSERT_NE(out, nullptr);
    {
        obs::TelemetrySink sink;
        obs::ProgressRenderer renderer(out);
        sink.addObserver([&renderer](const obs::Event &e) {
            renderer.observe(e);
        });
        json::Value p = json::Value::object();
        p.set("done", std::uint64_t{1});
        p.set("total", std::uint64_t{8});
        p.set("instsPerSec", 2.5e6);
        p.set("queueDepth", std::uint64_t{4});
        sink.event("progress", std::move(p));
        sink.event("campaign-end", json::Value::object());
    }
    std::fflush(out);
    std::rewind(out);
    char buf[512] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, out);
    std::fclose(out);
    std::remove(path.c_str());
    const std::string text(buf, n);
    EXPECT_NE(text.find("[1/8]"), std::string::npos);
    EXPECT_NE(text.find("2.50 Minsts/s"), std::string::npos);
    EXPECT_EQ(text.back(), '\n') << "campaign-end must finish the "
                                    "line";
}

TEST(Fuzz, TelemetryEmitsVerdictsAndSummary)
{
    fuzz::FuzzConfig cfg;
    cfg.programs = 5;
    cfg.oracle.maxProgInsts = 2000;
    obs::TelemetrySink sink;
    Capture cap;
    cap.attach(sink);
    cfg.telemetry = &sink;
    obs::MetricRegistry metrics;
    cfg.metrics = &metrics;
    const fuzz::FuzzResult r = fuzz::runFuzzCampaign(cfg, nullptr);

    EXPECT_EQ(cap.count("fuzz-begin"), 1u);
    EXPECT_EQ(cap.count("fuzz-verdict"), r.programsRun);
    EXPECT_EQ(cap.count("fuzz-end"), 1u);
    const obs::MetricRegistry::Snapshot snap = metrics.snapshot();
    ASSERT_FALSE(snap.counters.empty());
    EXPECT_EQ(snap.counters[0].first, "fuzz.programs");
    EXPECT_EQ(snap.counters[0].second, r.programsRun);
}

} // namespace
} // namespace dvi
