/**
 * @file
 * OS substrate tests: preemptive scheduling and DVI-aware
 * context-switch accounting (§6).
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "isa/registers.hh"
#include "os/scheduler.hh"
#include "test_programs.hh"
#include "workload/benchmarks.hh"

namespace dvi
{
namespace os
{
namespace
{

comp::Executable
workloadExe(bool edvi = true)
{
    workload::GeneratorParams params =
        workload::benchmarkParams(workload::BenchmarkId::Perl);
    params.mainIters = 40;
    return comp::compile(
        workload::generate(params),
        comp::CompileOptions{edvi ? comp::EdviPolicy::CallSites
                                  : comp::EdviPolicy::None});
}

TEST(Scheduler, RunsSingleThreadToCompletion)
{
    comp::Executable exe = comp::compile(testprog::sumProgram(100));
    Scheduler sched;
    sched.addThread("t0", exe, arch::EmulatorOptions{});
    sched.run();
    EXPECT_TRUE(sched.thread(0).finished());
    EXPECT_EQ(sched.thread(0).emu().memory().read(
                  prog::Module::globalBase),
              5050);
}

TEST(Scheduler, PreemptsOnQuantum)
{
    comp::Executable exe = workloadExe();
    SchedulerOptions opts;
    opts.quantum = 1000;
    opts.maxTotalInsts = 50000;
    Scheduler sched(opts);
    sched.addThread("t0", exe, arch::EmulatorOptions{});
    sched.run();
    EXPECT_GE(sched.stats().contextSwitches, 40u);
}

TEST(Scheduler, RoundRobinInterleavesThreads)
{
    comp::Executable exe = workloadExe();
    SchedulerOptions opts;
    opts.quantum = 500;
    opts.maxTotalInsts = 20000;
    Scheduler sched(opts);
    sched.addThread("a", exe, arch::EmulatorOptions{});
    sched.addThread("b", exe, arch::EmulatorOptions{});
    sched.run();
    // Both made comparable progress.
    const auto &sa = sched.thread(0).emu().stats();
    const auto &sb = sched.thread(1).emu().stats();
    EXPECT_GT(sa.insts, 5000u);
    EXPECT_GT(sb.insts, 5000u);
    EXPECT_NEAR(static_cast<double>(sa.insts),
                static_cast<double>(sb.insts), 1000.0);
}

TEST(Scheduler, DviSavesNeverExceedBaseline)
{
    comp::Executable exe = workloadExe();
    SchedulerOptions opts;
    opts.quantum = 2000;
    opts.maxTotalInsts = 100000;
    Scheduler sched(opts);
    sched.addThread("t0", exe, arch::EmulatorOptions{});
    sched.run();
    const SwitchStats &s = sched.stats();
    EXPECT_GT(s.contextSwitches, 0u);
    EXPECT_LE(s.dviIntSaveRestores, s.baselineIntSaveRestores);
    EXPECT_LE(s.dviFpSaveRestores, s.baselineFpSaveRestores);
    EXPECT_GT(s.intReductionPercent(), 0.0);
    EXPECT_LE(s.intReductionPercent(), 100.0);
}

TEST(Scheduler, EdviImprovesOnIdviOnly)
{
    comp::Executable plain = workloadExe(false);
    comp::Executable edvi = workloadExe(true);

    auto run_mode = [](const comp::Executable &exe,
                       bool honor_edvi) {
        arch::EmulatorOptions eo;
        eo.honorEdvi = honor_edvi;
        SchedulerOptions so;
        so.quantum = 2000;
        so.maxTotalInsts = 100000;
        Scheduler sched(so);
        sched.addThread("t", exe, eo);
        sched.run();
        return sched.stats().intReductionPercent();
    };

    const double idvi_only = run_mode(plain, false);
    const double full = run_mode(edvi, true);
    EXPECT_GT(idvi_only, 0.0);
    EXPECT_GT(full, idvi_only);
}

TEST(Scheduler, FpRegistersMostlyDeadInIntegerCode)
{
    comp::Executable exe = workloadExe();
    SchedulerOptions opts;
    opts.quantum = 2000;
    opts.maxTotalInsts = 60000;
    Scheduler sched(opts);
    sched.addThread("t0", exe, arch::EmulatorOptions{});
    sched.run();
    // perl has no FP work: nearly all FP saves eliminable (§6.2).
    EXPECT_GT(sched.stats().fpReductionPercent(), 90.0);
}

TEST(Scheduler, HistogramTracksLiveRegisters)
{
    comp::Executable exe = workloadExe();
    SchedulerOptions opts;
    opts.quantum = 1000;
    opts.maxTotalInsts = 50000;
    Scheduler sched(opts);
    sched.addThread("t0", exe, arch::EmulatorOptions{});
    sched.run();
    const Histogram &h = sched.stats().liveIntAtSwitch;
    EXPECT_EQ(h.samples(), sched.stats().contextSwitches);
    EXPECT_LE(h.max(), isa::contextSwitchSavedMask().count());
}

TEST(SchedulerDeath, NoThreadsIsFatal)
{
    Scheduler sched;
    EXPECT_DEATH(sched.run(), "no threads");
}

} // namespace
} // namespace os
} // namespace dvi
