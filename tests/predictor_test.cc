/**
 * @file
 * Branch predictor tests: bimodal/gshare learning, the combining
 * chooser, BTB, and the return address stack.
 */

#include <gtest/gtest.h>

#include "predictor/branch_predictor.hh"

namespace dvi
{
namespace predictor
{
namespace
{

TEST(CounterTable, SaturatesBothWays)
{
    CounterTable t(4, 1);
    EXPECT_FALSE(t.predict(0));  // weakly not-taken
    t.update(0, true);
    EXPECT_TRUE(t.predict(0));
    t.update(0, true);
    t.update(0, true);  // saturate high
    t.update(0, false);
    EXPECT_TRUE(t.predict(0));  // hysteresis
    t.update(0, false);
    t.update(0, false);
    EXPECT_FALSE(t.predict(0));
}

TEST(BranchPredictor, LearnsStronglyBiasedBranch)
{
    BranchPredictor bp{PredictorParams{}};
    const Addr pc = 0x400;
    for (int i = 0; i < 20; ++i)
        bp.update(pc, true);
    EXPECT_TRUE(bp.predict(pc));
    EXPECT_GT(bp.accuracy(), 0.0);
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern)
{
    // taken/not-taken alternation is hard for bimodal but trivial
    // for a history-indexed table; the combined predictor must reach
    // high accuracy after warmup.
    BranchPredictor bp{PredictorParams{}};
    const Addr pc = 0x808;
    bool taken = false;
    // Warmup.
    for (int i = 0; i < 200; ++i) {
        bp.update(pc, taken);
        taken = !taken;
    }
    unsigned correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (bp.predict(pc) == taken)
            ++correct;
        bp.update(pc, taken);
        taken = !taken;
    }
    EXPECT_GE(correct, 95u);
}

TEST(BranchPredictor, CountsMispredicts)
{
    BranchPredictor bp{PredictorParams{}};
    for (int i = 0; i < 10; ++i)
        bp.update(0x100, true);
    const auto before = bp.mispredicts();
    bp.update(0x100, false);  // surprise
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST(Btb, InsertLookup)
{
    Btb btb(64);
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x40, &target));
    btb.insert(0x40, 0x1234);
    ASSERT_TRUE(btb.lookup(0x40, &target));
    EXPECT_EQ(target, 0x1234u);
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_EQ(btb.misses(), 1u);
}

TEST(Btb, DirectMappedCollision)
{
    Btb btb(16);
    btb.insert(0x10, 1);
    btb.insert(0x10 + 16, 2);  // same slot
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x10, &target));
    EXPECT_TRUE(btb.lookup(0x10 + 16, &target));
    EXPECT_EQ(target, 2u);
}

TEST(Ras, LifoBehavior)
{
    ReturnAddressStack ras(4);
    ras.push(10);
    ras.push(20);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWrapsAndLosesDeepest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);  // overwrites 1
    EXPECT_EQ(ras.overflows(), 1u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);  // 1 was lost
}

TEST(Ras, DeepCallChain)
{
    ReturnAddressStack ras(8);
    for (Addr a = 1; a <= 8; ++a)
        ras.push(a);
    for (Addr a = 8; a >= 1; --a)
        EXPECT_EQ(ras.pop(), a);
}

} // namespace
} // namespace predictor
} // namespace dvi
