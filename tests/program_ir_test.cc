/**
 * @file
 * Unit tests for the program IR: CFG construction, successor
 * derivation, structural validation.
 */

#include <gtest/gtest.h>

#include "program/ir.hh"

namespace dvi
{
namespace prog
{
namespace
{

Module
tinyModule()
{
    Module mod;
    mod.name = "tiny";
    mod.procs.resize(1);
    Procedure &main = mod.procs[0];
    main.name = "main";
    int b = main.newBlock();
    main.emit(b, irHalt());
    return mod;
}

TEST(Ir, FactoriesPopulateFields)
{
    auto a = irAlu(IrOp::Add, 3, 1, 2);
    EXPECT_EQ(a.dst, 3u);
    EXPECT_EQ(a.src1, 1u);
    EXPECT_EQ(a.src2, 2u);

    auto c = irCall(2, {4, 5}, 6);
    EXPECT_EQ(c.callee, 2);
    EXPECT_EQ(c.args.size(), 2u);
    EXPECT_EQ(c.dst, 6u);

    EXPECT_TRUE(irJump(0).isTerminator());
    EXPECT_TRUE(irRet().isTerminator());
    EXPECT_TRUE(irHalt().isTerminator());
    EXPECT_TRUE(irBranch(IrOp::Beq, 1, 2, 0).isCondBranch());
    EXPECT_FALSE(irAlu(IrOp::Add, 1, 2, 3).isTerminator());
}

TEST(IrDeath, TooManyCallArgsPanics)
{
    EXPECT_DEATH((void)irCall(0, {1, 2, 3, 4, 5}), "4 arguments");
}

TEST(Cfg, FallthroughSuccessor)
{
    Procedure p;
    p.name = "p";
    int b0 = p.newBlock();
    p.newBlock();
    p.emit(b0, irAlu(IrOp::Add, 1, 1, 1));
    EXPECT_EQ(p.successors(0), (std::vector<int>{1}));
}

TEST(Cfg, CondBranchHasTwoSuccessors)
{
    Procedure p;
    int b0 = p.newBlock();
    p.newBlock();  // fallthrough
    p.newBlock();  // target
    p.emit(b0, irBranch(IrOp::Bne, 1, 2, 2));
    EXPECT_EQ(p.successors(0), (std::vector<int>{2, 1}));
}

TEST(Cfg, JumpHasSingleSuccessor)
{
    Procedure p;
    int b0 = p.newBlock();
    p.newBlock();
    p.emit(b0, irJump(1));
    EXPECT_EQ(p.successors(0), (std::vector<int>{1}));
}

TEST(Cfg, RetAndHaltHaveNoSuccessors)
{
    Procedure p;
    int b0 = p.newBlock();
    p.emit(b0, irRet());
    EXPECT_TRUE(p.successors(0).empty());
}

TEST(Cfg, SelfLoopBranch)
{
    Procedure p;
    int b0 = p.newBlock();
    p.newBlock();
    p.emit(b0, irBranch(IrOp::Bge, 1, 2, 0));
    EXPECT_EQ(p.successors(0), (std::vector<int>{0, 1}));
}

TEST(Cfg, InstCount)
{
    Procedure p;
    int b0 = p.newBlock();
    p.emit(b0, irAlu(IrOp::Add, 1, 1, 1));
    p.emit(b0, irRet());
    int b1 = p.newBlock();
    p.emit(b1, irHalt());
    EXPECT_EQ(p.instCount(), 3u);
}

TEST(Validate, AcceptsTinyModule)
{
    EXPECT_EQ(tinyModule().validate(), "");
}

TEST(Validate, RejectsEmptyModule)
{
    Module mod;
    EXPECT_NE(mod.validate(), "");
}

TEST(Validate, RejectsTerminatorNotLast)
{
    Module mod = tinyModule();
    Procedure &main = mod.procs[0];
    main.blocks[0].insts.insert(main.blocks[0].insts.begin(),
                                irRet());
    EXPECT_NE(mod.validate().find("terminator"), std::string::npos);
}

TEST(Validate, RejectsBranchTargetOutOfRange)
{
    Module mod = tinyModule();
    Procedure &main = mod.procs[0];
    main.blocks[0].insts.clear();
    main.emit(0, irJump(7));
    EXPECT_NE(mod.validate().find("target"), std::string::npos);
}

TEST(Validate, RejectsBadCallee)
{
    Module mod = tinyModule();
    Procedure &main = mod.procs[0];
    main.blocks[0].insts.clear();
    main.emit(0, irCall(3, {}));
    main.emit(0, irHalt());
    EXPECT_NE(mod.validate().find("callee"), std::string::npos);
}

TEST(Validate, RejectsExcessArgsForCallee)
{
    Module mod = tinyModule();
    mod.procs.resize(2);
    Procedure &callee = mod.procs[1];
    callee.name = "callee";
    callee.params.push_back(callee.newVReg());
    int cb = callee.newBlock();
    callee.emit(cb, irRet());

    Procedure &main = mod.procs[0];
    main.blocks[0].insts.clear();
    main.emit(0, irCall(1, {1, 2}));  // callee takes 1 param
    main.emit(0, irHalt());
    EXPECT_NE(mod.validate().find("arguments"), std::string::npos);
}

TEST(Validate, RejectsFallOffEnd)
{
    Module mod = tinyModule();
    Procedure &main = mod.procs[0];
    main.blocks[0].insts.clear();
    main.emit(0, irAlu(IrOp::Add, 1, 1, 1));
    EXPECT_NE(mod.validate().find("falls off"), std::string::npos);
}

} // namespace
} // namespace prog
} // namespace dvi
