/**
 * @file
 * Register allocation tests: correctness invariants on hand-made and
 * generated procedures (property style).
 */

#include <gtest/gtest.h>

#include "compiler/liveness.hh"
#include "compiler/regalloc.hh"
#include "isa/registers.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"

namespace dvi
{
namespace comp
{
namespace
{

using namespace prog;

void
checkAllocationValid(const Procedure &proc)
{
    Liveness live = computeLiveness(proc);
    Allocation alloc = allocateRegisters(proc, live);

    const RegMask allocatable =
        isa::allocatableCalleeSaved() | isa::allocatableCallerSaved();

    for (VReg v = 1; v < proc.nextVReg; ++v) {
        const VRegLoc &loc = alloc.locs[v];
        if (!loc.allocated)
            continue;
        if (loc.inReg) {
            // Only allocatable registers; never the reserved
            // scratches.
            EXPECT_TRUE(allocatable.test(loc.reg)) << "vreg " << v;
            EXPECT_NE(loc.reg, spillScratch0());
            EXPECT_NE(loc.reg, spillScratch1());
            // Values that cross calls must be callee-saved.
            if (alloc.liveAcrossCall.test(v)) {
                EXPECT_TRUE(isa::isCalleeSaved(loc.reg))
                    << "vreg " << v << " crosses a call in "
                    << isa::intRegName(loc.reg);
            }
        } else {
            EXPECT_GE(loc.spillSlot, 0);
            EXPECT_LT(loc.spillSlot,
                      static_cast<int>(alloc.numSpillSlots));
        }
    }

    // No two vregs sharing a register may have overlapping
    // occupancy; no two spilled vregs share a slot.
    for (VReg a = 1; a < proc.nextVReg; ++a) {
        for (VReg b = a + 1; b < proc.nextVReg; ++b) {
            const VRegLoc &la = alloc.locs[a];
            const VRegLoc &lb = alloc.locs[b];
            if (!la.allocated || !lb.allocated)
                continue;
            if (la.inReg && lb.inReg && la.reg == lb.reg) {
                EXPECT_FALSE(alloc.occupancy[a].intersects(
                    alloc.occupancy[b]))
                    << "vregs " << a << " and " << b
                    << " overlap in " << isa::intRegName(la.reg);
            }
            if (!la.inReg && !lb.inReg) {
                EXPECT_NE(la.spillSlot, lb.spillSlot);
            }
        }
    }

    // usedCalleeSaved must reflect the assignment.
    RegMask used;
    for (VReg v = 1; v < proc.nextVReg; ++v)
        if (alloc.locs[v].allocated && alloc.locs[v].inReg &&
            isa::isCalleeSaved(alloc.locs[v].reg))
            used.set(alloc.locs[v].reg);
    EXPECT_EQ(used, alloc.usedCalleeSaved);
}

TEST(RegAlloc, SimpleProcedureUsesCallerSaved)
{
    Procedure p;
    VReg a = p.newVReg(), b = p.newVReg(), c = p.newVReg();
    int b0 = p.newBlock();
    p.emit(b0, irLoadImm(a, 1));
    p.emit(b0, irLoadImm(b, 2));
    p.emit(b0, irAlu(IrOp::Add, c, a, b));
    p.emit(b0, irRet(c));

    Liveness live = computeLiveness(p);
    Allocation alloc = allocateRegisters(p, live);
    EXPECT_TRUE(alloc.usedCalleeSaved.empty());
    EXPECT_EQ(alloc.numSpillSlots, 0u);
    checkAllocationValid(p);
}

TEST(RegAlloc, CrossCallValueGetsCalleeSaved)
{
    Procedure p;
    VReg v = p.newVReg(), r = p.newVReg(), u = p.newVReg();
    int b0 = p.newBlock();
    p.emit(b0, irLoadImm(v, 9));
    p.emit(b0, irCall(0, {}, r));
    p.emit(b0, irAlu(IrOp::Add, u, v, r));
    p.emit(b0, irRet(u));

    Liveness live = computeLiveness(p);
    Allocation alloc = allocateRegisters(p, live);
    EXPECT_TRUE(alloc.liveAcrossCall.test(v));
    ASSERT_TRUE(alloc.locs[v].inReg);
    EXPECT_TRUE(isa::isCalleeSaved(alloc.locs[v].reg));
    // Spread policy: the first cross-call value lands in s0.
    EXPECT_EQ(alloc.locs[v].reg, 16);
    // r is the call result: defined after the call, not across it.
    EXPECT_FALSE(alloc.liveAcrossCall.test(r));
    checkAllocationValid(p);
}

TEST(RegAlloc, PressureForcesSpills)
{
    // More simultaneously live values than total allocatable
    // registers: some must spill.
    Procedure p;
    int b0 = p.newBlock();
    std::vector<VReg> vs;
    for (int i = 0; i < 24; ++i) {
        VReg v = p.newVReg();
        p.emit(b0, irLoadImm(v, i));
        vs.push_back(v);
    }
    // Use all of them after the fact so they are simultaneously
    // live.
    VReg acc = p.newVReg();
    p.emit(b0, irLoadImm(acc, 0));
    for (VReg v : vs)
        p.emit(b0, irAlu(IrOp::Add, acc, acc, v));
    p.emit(b0, irRet(acc));

    Liveness live = computeLiveness(p);
    Allocation alloc = allocateRegisters(p, live);
    EXPECT_GT(alloc.numSpillSlots, 0u);
    checkAllocationValid(p);
}

/** Property: allocation is valid on every generated benchmark
 * procedure. */
class RegAllocPropertyTest
    : public ::testing::TestWithParam<workload::BenchmarkId>
{
};

TEST_P(RegAllocPropertyTest, GeneratedProceduresAllocateValidly)
{
    const prog::Module mod = workload::generateBenchmark(GetParam());
    for (const Procedure &proc : mod.procs)
        checkAllocationValid(proc);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, RegAllocPropertyTest,
    ::testing::ValuesIn(workload::allBenchmarks()),
    [](const auto &info) {
        return workload::benchmarkName(info.param);
    });

/** Property: random generator configurations allocate validly. */
class RegAllocSeedTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RegAllocSeedTest, RandomConfigsAllocateValidly)
{
    workload::GeneratorParams params;
    params.seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
    params.numProcs = 6;
    params.calleeValues = 3 + GetParam() % 4;
    params.longLivedFraction = 0.1 * (GetParam() % 10);
    params.segmentsPerProc = 2 + GetParam() % 4;
    const prog::Module mod = workload::generate(params);
    for (const Procedure &proc : mod.procs)
        checkAllocationValid(proc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegAllocSeedTest,
                         ::testing::Range(0, 10));

} // namespace
} // namespace comp
} // namespace dvi
