/**
 * @file
 * Tests for the scenario layer: preset decomposition and round-trip,
 * runner and scenario registries, the fluent ScenarioGrid against
 * the hand-built reference campaign, and report file round-trips.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "driver/campaign.hh"
#include "driver/figures.hh"
#include "driver/scenario_registry.hh"
#include "harness/experiment.hh"
#include "sim/grid.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"

namespace dvi
{
namespace
{

TEST(Preset, RoundTripsThroughParse)
{
    for (const sim::DviPreset &p : sim::allPresets()) {
        const auto parsed = sim::parsePreset(p.name);
        ASSERT_TRUE(parsed.has_value()) << p.name;
        EXPECT_EQ(sim::presetName(*parsed), p.name);
    }
    // Case-insensitive.
    const auto upper = sim::parsePreset("FULL");
    ASSERT_TRUE(upper.has_value());
    EXPECT_EQ(sim::presetName(*upper), "full");
    // Unknown names are a soft error.
    EXPECT_FALSE(sim::parsePreset("bogus").has_value());
    EXPECT_FALSE(sim::parsePreset("").has_value());
}

TEST(Preset, DecomposesBinaryAndHardwareAxes)
{
    // The paper's three columns: binary axis and hardware axis are
    // independent — idvi uses a plain binary with DVI hardware on.
    EXPECT_EQ(sim::presetNone().edvi, comp::EdviPolicy::None);
    EXPECT_FALSE(sim::presetNone().hw.useIdvi);
    EXPECT_EQ(sim::presetIdvi().edvi, comp::EdviPolicy::None);
    EXPECT_TRUE(sim::presetIdvi().hw.useIdvi);
    EXPECT_FALSE(sim::presetIdvi().hw.useEdvi);
    EXPECT_EQ(sim::presetFull().edvi, comp::EdviPolicy::CallSites);
    EXPECT_TRUE(sim::presetFull().hw.useEdvi);
    EXPECT_EQ(sim::presetDense().edvi, comp::EdviPolicy::Dense);

    // The harness picks the preset's binary off the compiled pair.
    harness::BuiltBenchmark b =
        harness::buildBenchmark(workload::BenchmarkId::Li);
    EXPECT_EQ(&harness::exeFor(b, sim::presetNone()), &b.plain);
    EXPECT_EQ(&harness::exeFor(b, sim::presetIdvi()), &b.plain);
    EXPECT_EQ(&harness::exeFor(b, sim::presetFull()), &b.edvi);
}

TEST(Preset, ApplyStampsScenario)
{
    sim::Scenario s;
    sim::applyPreset(s, sim::presetIdvi());
    EXPECT_EQ(s.preset, "idvi");
    EXPECT_EQ(s.binary.edvi, comp::EdviPolicy::None);
    EXPECT_TRUE(s.hardware.dvi.useIdvi);
}

TEST(ParseEdviPolicy, OptionalAndCaseInsensitive)
{
    EXPECT_EQ(sim::parseEdviPolicy("CallSites"),
              comp::EdviPolicy::CallSites);
    EXPECT_EQ(sim::parseEdviPolicy("dense"),
              comp::EdviPolicy::Dense);
    EXPECT_FALSE(sim::parseEdviPolicy("sparse").has_value());
    for (comp::EdviPolicy p :
         {comp::EdviPolicy::None, comp::EdviPolicy::CallSites,
          comp::EdviPolicy::Dense})
        EXPECT_EQ(sim::parseEdviPolicy(sim::edviPolicyName(p)), p);
}

TEST(RunnerRegistry, BuiltinsRegisteredAndSorted)
{
    const std::vector<std::string> names =
        sim::RunnerRegistry::instance().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const char *builtin : {"oracle", "switch", "timing"}) {
        const sim::Runner *r =
            sim::RunnerRegistry::instance().find(builtin);
        ASSERT_NE(r, nullptr) << builtin;
        EXPECT_EQ(r->name(), builtin);
        EXPECT_FALSE(r->description().empty());
    }
    EXPECT_EQ(sim::RunnerRegistry::instance().find("warp-drive"),
              nullptr);
}

TEST(RunnerRegistry, CustomRunnerPlugsIntoTheDriver)
{
    // A new kind of run: count static kills without simulating.
    // Registering it is the only step — runJob dispatches by name.
    class KillCountRunner : public sim::Runner
    {
      public:
        std::string name() const override { return "kill-count"; }
        std::string
        description() const override
        {
            return "static kill count";
        }
        sim::RunResult
        run(const sim::Scenario &,
            const comp::Executable &exe) const override
        {
            sim::RunResult r;
            r.oracle.kills = exe.countKills();
            return r;
        }
        std::vector<std::string>
        metricNames() const override
        {
            return {"kills"};
        }
        void
        metricValues(const sim::RunResult &r,
                     std::vector<sim::MetricValue> &out)
            const override
        {
            out.clear();
            out.push_back(sim::MetricValue::ofU64(r.oracle.kills));
        }
    };
    if (!sim::RunnerRegistry::instance().find("kill-count"))
        sim::RunnerRegistry::instance().add(
            std::make_unique<KillCountRunner>());

    sim::Scenario s;
    s.runner = "kill-count";
    s.workload = workload::BenchmarkId::Li;
    s.binary.edvi = comp::EdviPolicy::CallSites;

    driver::ExecutableCache cache;
    driver::JobSpec spec;
    spec.scenario = s;
    const driver::JobResult r = driver::runJob(spec, cache);
    EXPECT_GT(r.run.oracle.kills, 0u);

    // The plain binary has no kills — the binary axis is honored.
    spec.scenario.binary.edvi = comp::EdviPolicy::None;
    EXPECT_EQ(driver::runJob(spec, cache).run.oracle.kills, 0u);
}

TEST(ScenarioRegistry, ListingIsSortedAndStable)
{
    const std::vector<std::string> first =
        driver::ScenarioRegistry::instance().names();
    EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
    EXPECT_EQ(first, driver::ScenarioRegistry::instance().names());

    // All figure campaigns plus the ablations are enumerable.
    for (const char *name :
         {"fig05", "fig06", "fig09", "fig10", "fig11", "fig12",
          "fig13", "ablation-edvi-density",
          "ablation-lvm-stack-depth", "regfile-dense"}) {
        EXPECT_NE(std::find(first.begin(), first.end(), name),
                  first.end())
            << name;
        const driver::RegisteredScenario &s =
            driver::scenarioFor(name);
        EXPECT_FALSE(s.description.empty());
        EXPECT_TRUE(static_cast<bool>(s.build));
    }
    EXPECT_EQ(driver::ScenarioRegistry::instance().find("nope"),
              nullptr);
}

TEST(ScenarioRegistry, AblationGridsHaveTheExpectedShape)
{
    // 5 jobs per save/restore benchmark (2 oracle + 3 timing).
    const driver::Campaign density =
        driver::scenarioFor("ablation-edvi-density").build(2000);
    EXPECT_EQ(density.size(),
              5 * workload::saveRestoreBenchmarks().size());

    // Unbounded + 5 depths per benchmark, all oracle runs.
    const driver::Campaign depth =
        driver::scenarioFor("ablation-lvm-stack-depth").build(2000);
    EXPECT_EQ(depth.size(),
              6 * workload::saveRestoreBenchmarks().size());
    for (const driver::JobSpec &job : depth.jobs())
        EXPECT_EQ(job.scenario.runner, "oracle");
    EXPECT_EQ(depth.jobs()[0].scenario.label, "unbounded");
    EXPECT_EQ(depth.jobs()[0].scenario.emu.lvmStackDepth, 0u);
}

TEST(ScenarioGrid, MatchesHandBuiltRegfileCampaign)
{
    const std::vector<unsigned> sizes = {40, 56, 72};
    const driver::Campaign grid = driver::Campaign(
        driver::regfileGrid(sizes, sim::paperPresets(), 7000,
                            "regfile"));
    const driver::Campaign hand = driver::regfileCampaign(
        sizes, sim::paperPresets(), 7000, "regfile");

    ASSERT_EQ(grid.size(), hand.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const sim::Scenario &g = grid.jobs()[i].scenario;
        const sim::Scenario &h = hand.jobs()[i].scenario;
        EXPECT_EQ(g.runner, h.runner);
        EXPECT_EQ(g.workload, h.workload);
        EXPECT_EQ(g.preset, h.preset);
        EXPECT_EQ(g.binary.edvi, h.binary.edvi);
        EXPECT_EQ(g.hardware.dvi.useIdvi, h.hardware.dvi.useIdvi);
        EXPECT_EQ(g.hardware.dvi.useEdvi, h.hardware.dvi.useEdvi);
        EXPECT_EQ(g.hardware.core.numPhysRegs,
                  h.hardware.core.numPhysRegs);
        EXPECT_EQ(g.budget.maxInsts, h.budget.maxInsts);
    }
}

TEST(ScenarioGrid, FiltersAndLabels)
{
    sim::Scenario proto;
    proto.runner = "timing";
    const std::vector<sim::Scenario> scenarios =
        sim::ScenarioGrid("filtered")
            .base(proto)
            .overPresets(sim::paperPresets())
            .overRegfileSizes({40, 80})
            .filter([](const sim::Scenario &s) {
                return s.preset != "idvi";
            })
            .label([](const sim::Scenario &s) {
                return s.preset + "@" +
                       std::to_string(s.hardware.core.numPhysRegs);
            })
            .scenarios();
    ASSERT_EQ(scenarios.size(), 4u);  // 3 presets * 2 sizes - idvi row
    EXPECT_EQ(scenarios[0].label, "none@40");
    EXPECT_EQ(scenarios[1].label, "none@80");
    EXPECT_EQ(scenarios[2].label, "full@40");
    EXPECT_EQ(scenarios[3].label, "full@80");
}

TEST(CampaignReport, FileRoundTripsBothFormats)
{
    driver::Campaign c("roundtrip");
    sim::Scenario s;
    s.runner = "oracle";
    s.workload = workload::BenchmarkId::Li;
    s.budget.maxInsts = 2000;
    sim::applyPreset(s, sim::presetFull());
    c.add(s);

    const driver::CampaignReport report =
        c.run(driver::CampaignOptions{1});

    const auto readBack = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };

    const std::string jsonPath = "scenario_test_roundtrip.json";
    report.writeFile(jsonPath, driver::ReportFormat::Json);
    EXPECT_EQ(readBack(jsonPath), report.toJson());
    std::remove(jsonPath.c_str());

    const std::string csvPath = "scenario_test_roundtrip.csv";
    report.writeFile(csvPath, driver::ReportFormat::Csv);
    EXPECT_EQ(readBack(csvPath), report.toCsv());
    std::remove(csvPath.c_str());

    // Emission is a pure function of the results.
    EXPECT_EQ(report.toJson(), report.toJson());
    EXPECT_EQ(report.toCsv(), report.toCsv());
}

} // namespace
} // namespace dvi
