/**
 * @file
 * In-process tests for the dvi-serve subsystem: a DviServer on an
 * ephemeral port driven through a real TCP client. Covers the
 * acceptance criteria — reports fetched over HTTP byte-identical to
 * a direct driver run for concurrent campaigns, compile-cache reuse
 * across submissions, 429 under overload — plus the soft-error
 * manifest path, cancellation, and the NDJSON event stream.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/failpoint.hh"
#include "driver/campaign.hh"
#include "serve/server.hh"
#include "sim/manifest.hh"
#include "sim/scenario.hh"

namespace dvi
{
namespace
{

// ------------------------------------------------- tiny HTTP client
//
// One request per connection (the server speaks Connection: close),
// blocking reads until EOF, chunked transfer decoding — just enough
// client to exercise the server the way curl would.

struct ClientResponse
{
    int status = 0;
    std::map<std::string, std::string> headers;  // lower-cased names
    std::string body;

    std::string
    header(const std::string &name) const
    {
        const auto it = headers.find(name);
        return it == headers.end() ? "" : it->second;
    }
};

std::string
lowerCopy(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    return s;
}

ClientResponse
httpRequest(std::uint16_t port, const std::string &method,
            const std::string &path, const std::string &body = "")
{
    ClientResponse res;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0)
        << "connect to port " << port;

    std::ostringstream req;
    req << method << " " << path << " HTTP/1.1\r\n"
        << "Host: 127.0.0.1\r\n"
        << "Connection: close\r\n";
    if (!body.empty())
        req << "Content-Length: " << body.size() << "\r\n";
    req << "\r\n" << body;
    const std::string text = req.str();
    std::size_t sent = 0;
    while (sent < text.size()) {
        const ssize_t n =
            ::send(fd, text.data() + sent, text.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // Status line.
    const std::size_t eol = raw.find("\r\n");
    if (eol == std::string::npos || raw.size() < 12)
        return res;
    res.status = std::atoi(raw.substr(9, 3).c_str());

    // Headers until the blank line.
    const std::size_t hdrEnd = raw.find("\r\n\r\n");
    if (hdrEnd == std::string::npos)
        return res;
    std::size_t pos = eol + 2;
    while (pos < hdrEnd) {
        const std::size_t lineEnd = raw.find("\r\n", pos);
        const std::string line = raw.substr(pos, lineEnd - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
            std::string name = lowerCopy(line.substr(0, colon));
            std::size_t vs = colon + 1;
            while (vs < line.size() && line[vs] == ' ')
                ++vs;
            res.headers[name] = line.substr(vs);
        }
        pos = lineEnd + 2;
    }

    std::string payload = raw.substr(hdrEnd + 4);
    if (res.headers["transfer-encoding"] == "chunked") {
        // Decode: <hex-size>\r\n<data>\r\n ... 0\r\n\r\n
        std::size_t p = 0;
        while (p < payload.size()) {
            const std::size_t lineEnd = payload.find("\r\n", p);
            if (lineEnd == std::string::npos)
                break;
            const std::size_t size = std::strtoul(
                payload.substr(p, lineEnd - p).c_str(), nullptr, 16);
            if (size == 0)
                break;
            res.body.append(payload, lineEnd + 2, size);
            p = lineEnd + 2 + size + 2;
        }
    } else {
        res.body = std::move(payload);
    }
    return res;
}

// --------------------------------------------------- test manifests

sim::Scenario
tinyScenario(workload::BenchmarkId id, const sim::DviPreset &preset,
             std::uint64_t insts)
{
    sim::Scenario s;
    s.runner = "timing";
    s.workload = id;
    s.budget.maxInsts = insts;
    sim::applyPreset(s, preset);
    return s;
}

/** A small campaign manifest as JSON text — what a client POSTs. */
std::string
manifestText(const std::string &name, workload::BenchmarkId id,
             std::uint64_t insts)
{
    sim::CampaignManifest m;
    m.name = name;
    for (const sim::DviPreset &preset : sim::paperPresets())
        m.scenarios.push_back(tinyScenario(id, preset, insts));
    return sim::manifestToJson(m);
}

/** What `dvi-run --manifest` would write for the same text: parse,
 * run, serialize. The server must serve these exact bytes. */
std::string
directReportBytes(const std::string &text)
{
    sim::CampaignManifest m;
    const std::string err = sim::manifestFromJson(text, m);
    EXPECT_EQ(err, "");
    driver::Campaign campaign(m.name, std::move(m.scenarios));
    driver::CampaignOptions copts;
    copts.jobs = 2;
    copts.profile = m.profile;
    return campaign.run(copts).toJson();
}

/** Poll GET /campaigns/<id> until the state token appears. */
void
awaitState(std::uint16_t port, const std::string &id,
           const std::string &state, unsigned timeoutMs = 60000)
{
    const std::string needle = "\"state\": \"" + state + "\"";
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    for (;;) {
        const ClientResponse res =
            httpRequest(port, "GET", "/campaigns/" + id);
        ASSERT_EQ(res.status, 200) << res.body;
        if (res.body.find(needle) != std::string::npos)
            return;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "campaign " << id << " never reached " << state
            << "; last status: " << res.body;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

// ------------------------------------------------------------ tests

TEST(Serve, HealthzAnswers)
{
    serve::ServeOptions opts;
    opts.port = 0;
    serve::DviServer server(opts);
    server.start();
    ASSERT_GT(server.port(), 0);

    const ClientResponse res =
        httpRequest(server.port(), "GET", "/healthz");
    EXPECT_EQ(res.status, 200);
    EXPECT_NE(res.body.find("\"status\": \"ok\""), std::string::npos);
    server.shutdown();
}

TEST(Serve, UnknownPathsAndIdsAre404)
{
    serve::ServeOptions opts;
    opts.port = 0;
    serve::DviServer server(opts);
    server.start();

    EXPECT_EQ(httpRequest(server.port(), "GET", "/nope").status, 404);
    EXPECT_EQ(
        httpRequest(server.port(), "GET", "/campaigns/c999").status,
        404);
    EXPECT_EQ(httpRequest(server.port(), "GET",
                          "/campaigns/c999/report")
                  .status,
              404);
    server.shutdown();
}

TEST(Serve, MalformedManifestIs400WithDiagnostic)
{
    serve::ServeOptions opts;
    opts.port = 0;
    serve::DviServer server(opts);
    server.start();

    // Not JSON at all.
    ClientResponse res = httpRequest(server.port(), "POST",
                                     "/campaigns", "not json {");
    EXPECT_EQ(res.status, 400);

    // Valid JSON, invalid manifest: the soft-error loader's
    // dotted-path diagnostic must come through to the client.
    res = httpRequest(
        server.port(), "POST", "/campaigns",
        "{\"campaign\": \"bad\", \"jobs\": [{\"workload\": "
        "\"no-such-benchmark\"}]}");
    EXPECT_EQ(res.status, 400);
    EXPECT_NE(res.body.find("workload"), std::string::npos)
        << res.body;
    server.shutdown();
}

TEST(Serve, ConcurrentCampaignReportsAreByteIdenticalToDirectRuns)
{
    serve::ServeOptions opts;
    opts.port = 0;
    opts.maxConcurrent = 2;
    serve::DviServer server(opts);
    server.start();

    // Two different manifests submitted back to back run
    // concurrently on the shared pool; each served report must
    // still be exactly what a standalone driver run produces.
    const std::string ma =
        manifestText("serve-a", workload::BenchmarkId::Li, 4000);
    const std::string mb =
        manifestText("serve-b", workload::BenchmarkId::Perl, 4000);

    const ClientResponse ra =
        httpRequest(server.port(), "POST", "/campaigns", ma);
    const ClientResponse rb =
        httpRequest(server.port(), "POST", "/campaigns", mb);
    ASSERT_EQ(ra.status, 202) << ra.body;
    ASSERT_EQ(rb.status, 202) << rb.body;
    ASSERT_NE(ra.body.find("\"id\": \"c1\""), std::string::npos);
    ASSERT_NE(rb.body.find("\"id\": \"c2\""), std::string::npos);

    awaitState(server.port(), "c1", "done");
    awaitState(server.port(), "c2", "done");

    const ClientResponse repA =
        httpRequest(server.port(), "GET", "/campaigns/c1/report");
    const ClientResponse repB =
        httpRequest(server.port(), "GET", "/campaigns/c2/report");
    ASSERT_EQ(repA.status, 200);
    ASSERT_EQ(repB.status, 200);
    EXPECT_EQ(repA.header("content-type"), "application/json");

    EXPECT_EQ(repA.body, directReportBytes(ma));
    EXPECT_EQ(repB.body, directReportBytes(mb));
    server.shutdown();
}

TEST(Serve, SecondIdenticalSubmissionReusesCompileCache)
{
    serve::ServeOptions opts;
    opts.port = 0;
    opts.maxConcurrent = 1;
    serve::DviServer server(opts);
    server.start();

    const std::string m =
        manifestText("cache-probe", workload::BenchmarkId::Go, 3000);

    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", m).status,
        202);
    awaitState(server.port(), "c1", "done");
    const std::uint64_t missesAfterFirst = server.cache().misses();
    EXPECT_GT(missesAfterFirst, 0u);  // first run compiled

    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", m).status,
        202);
    awaitState(server.port(), "c2", "done");

    // The repeat campaign compiled nothing: every get() hit the
    // process-wide cache, so misses stayed put while hits grew.
    EXPECT_EQ(server.cache().misses(), missesAfterFirst);
    EXPECT_GT(server.cache().hits(), 0u);

    // And the counters are visible to operators via GET /metrics.
    const ClientResponse metrics =
        httpRequest(server.port(), "GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("\"cache.hits\""), std::string::npos);
    EXPECT_NE(metrics.body.find("\"cache.misses\""),
              std::string::npos);
    server.shutdown();
}

TEST(Serve, OverloadIs429WithRetryAfter)
{
    serve::ServeOptions opts;
    opts.port = 0;
    opts.maxConcurrent = 1;
    opts.maxQueue = 0;
    serve::DviServer server(opts);
    server.start();

    // A budget big enough to still be running when the second
    // submission lands; cancelled before the test ends.
    const std::string slow = manifestText(
        "slow", workload::BenchmarkId::Compress, 50000000);
    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", slow)
            .status,
        202);
    awaitState(server.port(), "c1", "running");

    const ClientResponse refused =
        httpRequest(server.port(), "POST", "/campaigns", slow);
    EXPECT_EQ(refused.status, 429);
    EXPECT_FALSE(refused.header("retry-after").empty());
    EXPECT_NE(refused.body.find("capacity"), std::string::npos)
        << refused.body;

    // DELETE cancels cooperatively; the campaign must reach the
    // cancelled state, after which the report is a 409 (never Done).
    EXPECT_EQ(
        httpRequest(server.port(), "DELETE", "/campaigns/c1").status,
        202);
    awaitState(server.port(), "c1", "cancelled");
    EXPECT_EQ(httpRequest(server.port(), "GET",
                          "/campaigns/c1/report")
                  .status,
              409);
    server.shutdown();
}

TEST(Serve, EventStreamIsGaplessNdjsonMatchingTelemetryProtocol)
{
    serve::ServeOptions opts;
    opts.port = 0;
    serve::DviServer server(opts);
    server.start();

    const std::string m =
        manifestText("events", workload::BenchmarkId::Li, 3000);
    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", m).status,
        202);
    awaitState(server.port(), "c1", "done");

    const ClientResponse events = httpRequest(
        server.port(), "GET", "/campaigns/c1/events?follow=0");
    ASSERT_EQ(events.status, 200);
    EXPECT_EQ(events.header("content-type"),
              "application/x-ndjson");
    ASSERT_FALSE(events.body.empty());
    EXPECT_EQ(events.body.back(), '\n');

    // The stream is the PR-6 telemetry protocol: one JSON object
    // per line, seq gapless from 0, campaign-begin first and
    // campaign-end last.
    std::vector<std::string> lines;
    std::istringstream in(events.body);
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_NE(lines.front().find("\"kind\": \"campaign-begin\""),
              std::string::npos);
    EXPECT_NE(lines.back().find("\"kind\": \"campaign-end\""),
              std::string::npos);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string seq =
            "\"seq\": " + std::to_string(i) + ",";
        EXPECT_NE(lines[i].find(seq), std::string::npos)
            << "line " << i << ": " << lines[i];
    }

    // A ranged replay resumes mid-stream.
    const ClientResponse tail = httpRequest(
        server.port(), "GET",
        "/campaigns/c1/events?follow=0&from=" +
            std::to_string(lines.size() - 1));
    ASSERT_EQ(tail.status, 200);
    EXPECT_EQ(tail.body, lines.back() + "\n");
    server.shutdown();
}

// ------------------------------------------------- fault tolerance
//
// Failpoint state is process-global: each test arms its spec, runs,
// and disarms via the fixture teardown before any later test or
// campaign can trip over it.

class ServeChaos : public ::testing::Test
{
  protected:
    void SetUp() override { fail::reset(); }
    void TearDown() override { fail::reset(); }
};

TEST_F(ServeChaos, FailedCampaignReports500AndServerStaysHealthy)
{
    serve::ServeOptions opts;
    opts.port = 0;
    serve::DviServer server(opts);
    server.start();

    // driver.aggregate throws after every job ran — a campaign-level
    // fault that per-job isolation cannot absorb, so the session
    // lands in the failed state instead of wedging in running.
    ASSERT_EQ(fail::configure("driver.aggregate=throw:permanent"),
              "");
    const std::string m =
        manifestText("doomed", workload::BenchmarkId::Li, 3000);
    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", m).status,
        202);
    awaitState(server.port(), "c1", "failed");
    fail::reset();

    const ClientResponse report =
        httpRequest(server.port(), "GET", "/campaigns/c1/report");
    EXPECT_EQ(report.status, 500);
    EXPECT_NE(report.body.find("campaign failed"), std::string::npos)
        << report.body;
    EXPECT_NE(report.body.find("driver.aggregate"),
              std::string::npos)
        << report.body;

    // The failure is one campaign's, not the server's: liveness and
    // a fresh fault-free submission both still work.
    EXPECT_EQ(httpRequest(server.port(), "GET", "/healthz").status,
              200);
    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", m).status,
        202);
    awaitState(server.port(), "c2", "done");
    server.shutdown();
}

TEST_F(ServeChaos, DegradedCampaignServesReportWithErrorRecords)
{
    serve::ServeOptions opts;
    opts.port = 0;
    serve::DviServer server(opts);
    server.start();

    ASSERT_EQ(fail::configure("driver.job=throw:permanent@once"), "");
    const std::string m =
        manifestText("degraded", workload::BenchmarkId::Li, 3000);
    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", m).status,
        202);
    awaitState(server.port(), "c1", "done");
    fail::reset();

    // Done, but flagged: the status document and the report both
    // carry the degradation, and the event stream carries the error
    // event for the quarantined job.
    const ClientResponse status =
        httpRequest(server.port(), "GET", "/campaigns/c1");
    ASSERT_EQ(status.status, 200);
    EXPECT_NE(status.body.find("\"degraded\": true"),
              std::string::npos)
        << status.body;

    const ClientResponse report =
        httpRequest(server.port(), "GET", "/campaigns/c1/report");
    ASSERT_EQ(report.status, 200);
    EXPECT_NE(report.body.find("\"degraded\": true"),
              std::string::npos);
    EXPECT_NE(report.body.find("\"kind\": \"permanent\""),
              std::string::npos);

    const ClientResponse events = httpRequest(
        server.port(), "GET", "/campaigns/c1/events?follow=0");
    ASSERT_EQ(events.status, 200);
    EXPECT_NE(events.body.find("\"kind\": \"error\""),
              std::string::npos);

    // /metrics rolls the quarantine up server-wide.
    const ClientResponse metrics =
        httpRequest(server.port(), "GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("\"serve.jobsQuarantined\": 1"),
              std::string::npos)
        << metrics.body;
    server.shutdown();
}

TEST_F(ServeChaos, RequestFaultIs500ButHealthzIsExempt)
{
    serve::ServeOptions opts;
    opts.port = 0;
    serve::DviServer server(opts);
    server.start();

    // Every non-healthz request faults; the HTTP layer catches the
    // throw per request, so each one answers 500 and the next
    // connection is served normally.
    ASSERT_EQ(fail::configure("serve.request=throw:permanent"), "");
    EXPECT_EQ(httpRequest(server.port(), "GET", "/campaigns").status,
              500);
    EXPECT_EQ(httpRequest(server.port(), "GET", "/metrics").status,
              500);
    // Liveness is answered before the failpoint on purpose.
    EXPECT_EQ(httpRequest(server.port(), "GET", "/healthz").status,
              200);
    fail::reset();
    EXPECT_EQ(httpRequest(server.port(), "GET", "/campaigns").status,
              200);
    server.shutdown();
}

TEST_F(ServeChaos, StalledClientTimesOutWithoutBlockingOthers)
{
    serve::ServeOptions opts;
    opts.port = 0;
    opts.ioTimeoutSeconds = 1;
    serve::DviServer server(opts);
    server.start();

    // A client that connects and then goes silent mid-request: the
    // per-connection receive timeout must reclaim the handler
    // thread with a 408 instead of holding it forever.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char partial[] = "GET /healthz HTT";  // never finished
    ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);

    // Meanwhile the server keeps answering everyone else.
    EXPECT_EQ(httpRequest(server.port(), "GET", "/healthz").status,
              200);

    // The stalled connection is answered 408 (or closed) within the
    // timeout, never left half-open.
    std::string raw;
    char buf[1024];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (!raw.empty()) {
        EXPECT_NE(raw.find("408"), std::string::npos) << raw;
    }

    EXPECT_EQ(httpRequest(server.port(), "GET", "/healthz").status,
              200);
    server.shutdown();
}

TEST(Serve, ShutdownCancelsRunningCampaigns)
{
    serve::ServeOptions opts;
    opts.port = 0;
    opts.maxConcurrent = 1;
    serve::DviServer server(opts);
    server.start();

    const std::string slow = manifestText(
        "slow-shutdown", workload::BenchmarkId::Ijpeg, 50000000);
    ASSERT_EQ(
        httpRequest(server.port(), "POST", "/campaigns", slow)
            .status,
        202);
    awaitState(server.port(), "c1", "running");

    // Must return promptly (cooperative cancel, not a full run) and
    // leave the session terminal.
    server.shutdown();
    SUCCEED();
}

} // namespace
} // namespace dvi
