/**
 * @file
 * Unit tests for statistics: counters, histograms, tables.
 */

#include <gtest/gtest.h>

#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace dvi
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    c.increment();
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Ratios, PercentHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(percent(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(ratio(3, 4), 0.75);
    EXPECT_DOUBLE_EQ(ratio(3, 0), 0.0);
}

TEST(Histogram, MeanMinMax)
{
    Histogram h;
    h.record(2);
    h.record(4);
    h.record(6);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.sum(), 12u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.min(), 2u);
    EXPECT_EQ(h.max(), 6u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h;
    h.record(10, 5);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    EXPECT_EQ(h.countAt(10), 5u);
    EXPECT_EQ(h.countAt(9), 0u);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    EXPECT_EQ(h.percentile(0.5), 50u);
    EXPECT_EQ(h.percentile(0.99), 99u);
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.percentile(0.0), 1u);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, Reset)
{
    Histogram h;
    h.record(3);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.buckets(), 0u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Data column is right-aligned: "22" ends each line at the same
    // column as " 1".
    EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(Table, Csv)
{
    Table t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(Table::fmt(std::uint64_t(42)), "42");
}

TEST(TableDeath, MismatchedRowPanics)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TableDeath, RowBeforeHeaderPanics)
{
    Table t;
    EXPECT_DEATH(t.addRow({"x"}), "before setHeader");
}

} // namespace
} // namespace dvi
