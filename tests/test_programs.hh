/**
 * @file
 * Hand-built IR programs shared by the compiler/emulator/uarch tests.
 */

#ifndef DVI_TESTS_TEST_PROGRAMS_HH
#define DVI_TESTS_TEST_PROGRAMS_HH

#include "program/ir.hh"

namespace dvi
{
namespace testprog
{

/**
 * main: v0 = sum of 1..n (loop), stored to globals[0]; halt.
 */
inline prog::Module
sumProgram(int n)
{
    using namespace prog;
    Module mod;
    mod.name = "sum";
    mod.globalWords = 4;
    mod.procs.resize(1);
    Procedure &main = mod.procs[0];
    main.name = "main";

    VReg zero = main.newVReg();
    VReg i = main.newVReg();
    VReg acc = main.newVReg();
    VReg gp = main.newVReg();

    int b0 = main.newBlock();
    main.emit(b0, irLoadImm(zero, 0));
    main.emit(b0, irLoadImm(i, n));
    main.emit(b0, irLoadImm(acc, 0));

    int loop = main.newBlock();
    main.emit(loop, irAlu(IrOp::Add, acc, acc, i));
    main.emit(loop, irAluImm(IrOp::AddImm, i, i, -1));
    main.emit(loop, irBranch(IrOp::Bne, i, zero, loop));

    int done = main.newBlock();
    main.emit(done, irLoadImm(gp, static_cast<std::int32_t>(
                                      Module::globalBase)));
    main.emit(done, irStore(acc, gp, 0));
    main.emit(done, irHalt());
    return mod;
}

/**
 * fact(n): recursive factorial; main stores fact(n) to globals[0].
 */
inline prog::Module
factorialProgram(int n)
{
    using namespace prog;
    Module mod;
    mod.name = "fact";
    mod.globalWords = 4;
    mod.procs.resize(2);

    // proc 1: fact(x) = x < 1 ? 1 : x * fact(x - 1)
    Procedure &fact = mod.procs[1];
    fact.name = "fact";
    VReg x = fact.newVReg();
    fact.params.push_back(x);
    VReg one = fact.newVReg();
    int fb0 = fact.newBlock();
    fact.emit(fb0, irLoadImm(one, 1));
    fact.emit(fb0, irBranch(IrOp::Blt, x, one, 2));
    int fb1 = fact.newBlock();
    VReg xm1 = fact.newVReg();
    VReg sub = fact.newVReg();
    VReg res = fact.newVReg();
    fact.emit(fb1, irAluImm(IrOp::AddImm, xm1, x, -1));
    fact.emit(fb1, irCall(1, {xm1}, sub));
    fact.emit(fb1, irAlu(IrOp::Mul, res, x, sub));
    fact.emit(fb1, irRet(res));
    int fb2 = fact.newBlock();
    VReg one2 = fact.newVReg();
    fact.emit(fb2, irLoadImm(one2, 1));
    fact.emit(fb2, irRet(one2));

    // main
    Procedure &main = mod.procs[0];
    main.name = "main";
    VReg arg = main.newVReg();
    VReg r = main.newVReg();
    VReg gp = main.newVReg();
    int b0 = main.newBlock();
    main.emit(b0, irLoadImm(arg, n));
    main.emit(b0, irCall(1, {arg}, r));
    main.emit(b0, irLoadImm(gp, static_cast<std::int32_t>(
                                    Module::globalBase)));
    main.emit(b0, irStore(r, gp, 0));
    main.emit(b0, irHalt());
    return mod;
}

/**
 * The paper's Fig. 7 scenario: two callers of one callee. Both
 * callers hold a value in the same callee-saved register (their
 * first cross-call value lands in s0 in both). In caller1 the value
 * is live at the call to `callee`; in caller2 it is dead there (its
 * last use precedes that call, though it crossed an earlier call so
 * it is register-allocated callee-saved). The callee itself keeps a
 * value live across a helper call, so it saves/restores s0.
 *
 * With E-DVI + the LVM-Stack scheme, exactly the save and restore
 * executed on behalf of caller2's dead value are eliminable.
 */
inline prog::Module
fig7Program()
{
    using namespace prog;
    Module mod;
    mod.name = "fig7";
    mod.globalWords = 8;
    mod.procs.resize(5);

    // proc 4: helper — a leaf.
    Procedure &helper = mod.procs[4];
    helper.name = "helper";
    VReg hp = helper.newVReg();
    helper.params.push_back(hp);
    int hb = helper.newBlock();
    VReg ht = helper.newVReg();
    helper.emit(hb, irAlu(IrOp::Add, ht, hp, hp));
    helper.emit(hb, irRet(ht));

    // proc 3: callee — w is live across the helper call, forcing a
    // callee-saved register (s0) with a live-store/live-load pair.
    Procedure &callee = mod.procs[3];
    callee.name = "callee";
    VReg cp = callee.newVReg();
    callee.params.push_back(cp);
    int cb = callee.newBlock();
    VReg w = callee.newVReg();
    VReg hr = callee.newVReg();
    VReg cres = callee.newVReg();
    callee.emit(cb, irAluImm(IrOp::AddImm, w, cp, 7));
    callee.emit(cb, irCall(4, {cp}, hr));
    callee.emit(cb, irAlu(IrOp::Add, cres, w, hr));
    callee.emit(cb, irRet(cres));

    // Callers: v crosses the first call in both; only caller1 keeps
    // it live across the second call (to `callee`).
    auto make_caller = [&](int idx, const char *name,
                           bool live_at_second) {
        Procedure &p = mod.procs[static_cast<std::size_t>(idx)];
        p.name = name;
        VReg a = p.newVReg();
        p.params.push_back(a);
        p.numLocalSlots = 2;
        int b = p.newBlock();
        VReg v = p.newVReg();
        p.emit(b, irAluImm(IrOp::AddImm, v, a, 100));
        VReg r1 = p.newVReg();
        p.emit(b, irCall(3, {a}, r1));  // v live across this call
        if (!live_at_second)
            p.emit(b, irStoreStack(v, 0));  // last use of v
        VReg r2 = p.newVReg();
        p.emit(b, irCall(3, {r1}, r2));
        if (live_at_second) {
            VReg u = p.newVReg();
            p.emit(b, irAlu(IrOp::Add, u, v, r2));
            p.emit(b, irRet(u));
        } else {
            p.emit(b, irRet(r2));
        }
    };
    make_caller(1, "caller1", true);
    make_caller(2, "caller2", false);

    Procedure &main = mod.procs[0];
    main.name = "main";
    VReg c = main.newVReg();
    VReg r1 = main.newVReg();
    VReg r2 = main.newVReg();
    VReg gp = main.newVReg();
    int b0 = main.newBlock();
    main.emit(b0, irLoadImm(c, 5));
    main.emit(b0, irCall(1, {c}, r1));
    main.emit(b0, irCall(2, {c}, r2));
    main.emit(b0, irLoadImm(gp, static_cast<std::int32_t>(
                                    Module::globalBase)));
    main.emit(b0, irStore(r1, gp, 0));
    main.emit(b0, irStore(r2, gp, 8));
    main.emit(b0, irHalt());
    return mod;
}

} // namespace testprog
} // namespace dvi

#endif // DVI_TESTS_TEST_PROGRAMS_HH
