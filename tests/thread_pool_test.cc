/**
 * @file
 * Unit tests for the work-stealing thread pool: completion,
 * index-ordered results, exception propagation, reuse after wait,
 * nested submission, and clean shutdown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "driver/thread_pool.hh"

namespace dvi
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    driver::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleThreadWorks)
{
    driver::ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForOrdersResultsByIndex)
{
    driver::ThreadPool pool(4);
    std::vector<std::size_t> out(500, 0);
    driver::parallelFor(pool, out.size(),
                        [&out](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPool, WaitWithNoTasksReturns)
{
    driver::ThreadPool pool(2);
    pool.wait();  // must not hang
    SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait)
{
    driver::ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 25; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesFirstException)
{
    driver::ThreadPool pool(4);
    std::atomic<int> completed{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&completed, i] {
            if (i == 13)
                throw std::runtime_error("boom");
            ++completed;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Every non-throwing task still ran.
    EXPECT_EQ(completed.load(), 63);
    // The error is consumed: the pool is usable again.
    pool.submit([&completed] { ++completed; });
    pool.wait();
    EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, WorkersCanSubmit)
{
    driver::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            for (int j = 0; j < 4; ++j)
                pool.submit([&count] { ++count; });
        });
    }
    // Note: wait() waits for *all* submitted tasks, including the
    // nested ones, because unfinished counts them the moment they
    // are submitted (before their parent finishes).
    pool.wait();
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{0};
    {
        driver::ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must drain and join without
        // hanging or crashing.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(TaskGroup, WaitsOnlyForItsOwnTasks)
{
    // Two groups on one pool: finishing group A must not block on
    // group B's slow tasks — the property dvi-serve needs to run
    // concurrent campaigns on a shared pool.
    driver::ThreadPool pool(4);
    std::atomic<int> fast{0};
    std::atomic<bool> release{false};

    driver::TaskGroup slow(pool);
    for (int i = 0; i < 4; ++i)
        slow.submit([&release] {
            while (!release.load())
                std::this_thread::yield();
        });

    driver::TaskGroup quick(pool);
    for (int i = 0; i < 16; ++i)
        quick.submit([&fast] { ++fast; });
    quick.wait();  // must return while `slow` is still parked
    EXPECT_EQ(fast.load(), 16);

    release.store(true);
    slow.wait();
}

TEST(TaskGroup, PropagatesFirstExceptionAndStaysUsable)
{
    driver::ThreadPool pool(2);
    driver::TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        group.submit([&ran, i] {
            if (i == 3)
                throw std::runtime_error("task boom");
            ++ran;
        });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 7);

    // The error is consumed; the group accepts more work.
    group.submit([&ran] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 8);
}

TEST(TaskGroup, DestructorWaits)
{
    driver::ThreadPool pool(2);
    std::atomic<int> count{0};
    {
        driver::TaskGroup group(pool);
        for (int i = 0; i < 32; ++i)
            group.submit([&count] { ++count; });
        // No wait(): the destructor must block until all 32 ran.
    }
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(driver::ThreadPool::hardwareThreads(), 1u);
    driver::ThreadPool pool(0);  // 0 = hardware concurrency
    EXPECT_GE(pool.numThreads(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

} // namespace
} // namespace dvi
