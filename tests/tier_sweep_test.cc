/**
 * @file
 * Differential registry sweep: every registered scenario must
 * produce a byte-identical campaign report whether its emulators run
 * on the tier-0 interpreter or the tier-1 translation cache. The
 * execution tier is a throughput knob, never a results axis — this
 * is the system-level restatement of the fuzz oracle's tier-lockstep
 * layer, over the real campaigns users run.
 *
 * Reports embed each job's resolved scenario (sparse diff form), so
 * the one field that legitimately differs — `emu.tier` itself — is
 * stripped from the provenance before comparison; every metric byte
 * must then match.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/json.hh"
#include "driver/campaign.hh"
#include "driver/scenario_registry.hh"
#include "sim/manifest.hh"

namespace dvi
{
namespace
{

/** Deep copy with scenario provenance's `emu.tier` removed (and an
 * `emu` object left empty by the removal dropped entirely, matching
 * the sparse form of a scenario that never mentioned it). */
json::Value
stripEmuTier(const json::Value &v)
{
    if (v.isArray()) {
        json::Value out = json::Value::array();
        for (const json::Value &item : v.items())
            out.push(stripEmuTier(item));
        return out;
    }
    if (v.isObject()) {
        json::Value out = json::Value::object();
        for (const auto &m : v.members()) {
            if (m.first == "emu" && m.second.isObject()) {
                json::Value emu = json::Value::object();
                for (const auto &e : m.second.members())
                    if (e.first != "tier")
                        emu.set(e.first, stripEmuTier(e.second));
                if (!emu.members().empty())
                    out.set(m.first, std::move(emu));
                continue;
            }
            out.set(m.first, stripEmuTier(m.second));
        }
        return out;
    }
    return v;
}

/** The scenario's report with every job forced to `tier`. */
json::Value
reportWithTier(const driver::RegisteredScenario &entry,
               std::uint64_t insts, arch::ExecTier tier)
{
    const driver::Campaign base = entry.build(insts);
    std::vector<sim::Scenario> scenarios;
    scenarios.reserve(base.size());
    for (const driver::JobSpec &job : base.jobs()) {
        sim::Scenario s = job.scenario;
        s.emu.tier = tier;
        scenarios.push_back(std::move(s));
    }
    const driver::Campaign campaign(entry.name,
                                    std::move(scenarios));
    driver::CampaignOptions opts;
    opts.jobs = 4;
    const json::ParseResult parsed =
        json::parse(campaign.run(opts).toJson());
    EXPECT_EQ(parsed.error, "") << entry.name;
    return parsed.value;
}

TEST(TierSweep, EveryRegisteredScenarioIsTierInvariant)
{
    for (const std::string &name :
         driver::ScenarioRegistry::instance().names()) {
        const driver::RegisteredScenario &entry =
            driver::scenarioFor(name);
        // Small budgets keep the sweep fast; both sides see the
        // same budget, so the comparison is exact regardless.
        const std::uint64_t insts = 600;
        const json::Value interp = stripEmuTier(
            reportWithTier(entry, insts, arch::ExecTier::Interp));
        const json::Value xlate = stripEmuTier(
            reportWithTier(entry, insts, arch::ExecTier::Xlate));
        EXPECT_EQ(interp.dump(), xlate.dump()) << name;
    }
}

} // namespace
} // namespace dvi
