/**
 * @file
 * Register-file timing model tests (§4.2's Fig. 6 methodology).
 */

#include <gtest/gtest.h>

#include "timing/regfile_timing.hh"

namespace dvi
{
namespace timing
{
namespace
{

TEST(RegFileTiming, MonotonicInRegisterCount)
{
    RegFileTimingModel m;
    double prev = 0.0;
    for (unsigned n = 32; n <= 128; n += 8) {
        const double t = m.accessTime(n, 8, 4);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(RegFileTiming, LinearInRegisterCount)
{
    RegFileTimingModel m;
    const double d1 = m.accessTime(64, 8, 4) - m.accessTime(48, 8, 4);
    const double d2 = m.accessTime(80, 8, 4) - m.accessTime(64, 8, 4);
    EXPECT_NEAR(d1, d2, 1e-12);
}

TEST(RegFileTiming, QuadraticInPorts)
{
    RegFileTimingModel m;
    const double t0 = m.accessTime(64, 0, 0);
    const double d6 = m.accessTime(64, 4, 2) - t0;   // 6 ports
    const double d12 = m.accessTime(64, 8, 4) - t0;  // 12 ports
    EXPECT_NEAR(d12 / d6, 4.0, 1e-9);
}

TEST(RegFileTiming, IssueWidthPortMapping)
{
    // 2 read ports per issue slot + 1 write port per slot (§4.2).
    RegFileTimingModel m;
    EXPECT_DOUBLE_EQ(m.accessTimeForIssueWidth(64, 4),
                     m.accessTime(64, 8, 4));
    EXPECT_DOUBLE_EQ(m.accessTimeForIssueWidth(64, 8),
                     m.accessTime(64, 16, 8));
}

TEST(RegFileTiming, PerformanceDividesIpcByAccessTime)
{
    RegFileTimingModel m;
    const double t = m.accessTimeForIssueWidth(50, 4);
    EXPECT_DOUBLE_EQ(m.performance(2.0, 50, 4), 2.0 / t);
}

TEST(RegFileTiming, SmallerFileIsFaster)
{
    // The paper's design point: a 50-entry file cycles faster than
    // a 64-entry one, so equal IPC means better performance.
    RegFileTimingModel m;
    EXPECT_GT(m.performance(1.8, 50, 4), m.performance(1.8, 64, 4));
}

TEST(RegFileTiming, PlausibleAbsoluteLatency)
{
    // The Fig. 2-era design point should land in the ~1-2ns range.
    RegFileTimingModel m;
    const double t = m.accessTimeForIssueWidth(64, 4);
    EXPECT_GT(t, 0.5);
    EXPECT_LT(t, 3.0);
}

} // namespace
} // namespace timing
} // namespace dvi
