/**
 * @file
 * Golden-stats regression test for the timing core.
 *
 * Locks the complete CoreStats record — every counter plus the
 * sampled occupancy histograms — for a fixed grid of workloads x DVI
 * presets (none / idvi / full / dense) x register-file sizes. The
 * expected values in uarch_golden_values.inc were recorded from the
 * original scan-based scheduler, so a pass proves the event-driven
 * scheduler is cycle-exact with it; any future scheduler or
 * performance change that shifts a single counter anywhere in this
 * grid fails loudly instead of silently drifting the paper's
 * reproduction.
 *
 * Regenerate (only for an intentional behavior change):
 *
 *     build/dvi-golden > tests/uarch_golden_values.inc
 */

#include <gtest/gtest.h>

#include "golden_common.hh"

namespace dvi
{
namespace golden
{
namespace
{

const GoldenRecord kGoldenRecords[] = {
#include "uarch_golden_values.inc"
};

void
expectHistogramEq(const uarch::HistogramDigest &expect,
                  const uarch::HistogramDigest &got)
{
    EXPECT_EQ(expect.samples, got.samples);
    EXPECT_EQ(expect.sum, got.sum);
    EXPECT_EQ(expect.min, got.min);
    EXPECT_EQ(expect.max, got.max);
    EXPECT_EQ(expect.buckets, got.buckets);
    EXPECT_EQ(expect.countsHash, got.countsHash);
}

class GoldenStatsTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GoldenStatsTest, CoreStatsAreByteIdentical)
{
    const GoldenRecord &rec = kGoldenRecords[GetParam()];
    const uarch::CoreStatsDigest got = runGolden(rec.scenario);
    const uarch::CoreStatsDigest &e = rec.expect;

    EXPECT_EQ(e.cycles, got.cycles);
    EXPECT_EQ(e.fetchedInsts, got.fetchedInsts);
    EXPECT_EQ(e.fetchedKills, got.fetchedKills);
    EXPECT_EQ(e.decodedInsts, got.decodedInsts);
    EXPECT_EQ(e.committedProgInsts, got.committedProgInsts);
    EXPECT_EQ(e.committedKills, got.committedKills);
    EXPECT_EQ(e.savesSeen, got.savesSeen);
    EXPECT_EQ(e.restoresSeen, got.restoresSeen);
    EXPECT_EQ(e.savesEliminated, got.savesEliminated);
    EXPECT_EQ(e.restoresEliminated, got.restoresEliminated);
    EXPECT_EQ(e.loadsExecuted, got.loadsExecuted);
    EXPECT_EQ(e.storesExecuted, got.storesExecuted);
    EXPECT_EQ(e.loadForwards, got.loadForwards);
    EXPECT_EQ(e.condBranches, got.condBranches);
    EXPECT_EQ(e.branchMispredicts, got.branchMispredicts);
    EXPECT_EQ(e.rasMispredicts, got.rasMispredicts);
    EXPECT_EQ(e.btbMissBubbles, got.btbMissBubbles);
    EXPECT_EQ(e.renameStallCycles, got.renameStallCycles);
    EXPECT_EQ(e.windowFullCycles, got.windowFullCycles);
    EXPECT_EQ(e.fetchBlockedCycles, got.fetchBlockedCycles);
    EXPECT_EQ(e.il1Misses, got.il1Misses);
    EXPECT_EQ(e.dl1Misses, got.dl1Misses);
    EXPECT_EQ(e.dl1Accesses, got.dl1Accesses);
    EXPECT_EQ(e.l2Misses, got.l2Misses);
    expectHistogramEq(e.pregsInUse, got.pregsInUse);
    expectHistogramEq(e.liveRegs, got.liveRegs);
}

TEST(GoldenStats, TableMatchesTheScenarioSet)
{
    // The .inc must cover exactly the locked scenario grid, in
    // order; a stale regeneration shows up here first.
    const std::vector<GoldenScenario> set = goldenScenarios();
    ASSERT_EQ(set.size(),
              sizeof(kGoldenRecords) / sizeof(kGoldenRecords[0]));
    for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_STREQ(set[i].benchmark,
                     kGoldenRecords[i].scenario.benchmark);
        EXPECT_STREQ(set[i].preset,
                     kGoldenRecords[i].scenario.preset);
        EXPECT_EQ(set[i].numPhysRegs,
                  kGoldenRecords[i].scenario.numPhysRegs);
        EXPECT_EQ(set[i].maxInsts,
                  kGoldenRecords[i].scenario.maxInsts);
    }
}

std::string
goldenTestName(const ::testing::TestParamInfo<std::size_t> &info)
{
    const GoldenScenario &g = kGoldenRecords[info.param].scenario;
    return std::string(g.benchmark) + "_" + g.preset + "_r" +
           std::to_string(g.numPhysRegs);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GoldenStatsTest,
    ::testing::Range<std::size_t>(0, sizeof(kGoldenRecords) /
                                         sizeof(kGoldenRecords[0])),
    goldenTestName);

} // namespace
} // namespace golden
} // namespace dvi
