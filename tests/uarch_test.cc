/**
 * @file
 * Out-of-order core tests: pipeline sanity, DVI hook behavior,
 * agreement with the functional oracle, and resource sweeps.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "compiler/compile.hh"
#include "harness/experiment.hh"
#include "test_programs.hh"
#include "uarch/core.hh"
#include "workload/benchmarks.hh"

namespace dvi
{
namespace uarch
{
namespace
{

comp::Executable
smallBenchmark(workload::BenchmarkId id, bool edvi,
               unsigned main_iters = 2)
{
    workload::GeneratorParams params =
        workload::benchmarkParams(id);
    params.mainIters = main_iters;
    return comp::compile(
        workload::generate(params),
        comp::CompileOptions{edvi ? comp::EdviPolicy::CallSites
                                  : comp::EdviPolicy::None});
}

TEST(Core, RunsToCompletionAndCountsMatchEmulator)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Compress, true);

    arch::Emulator emu(exe);
    emu.run();
    ASSERT_TRUE(emu.halted());

    CoreConfig cfg;
    Core core(exe, cfg);
    const CoreStats &s = core.run();

    // Committed program instructions equal the functional stream's.
    EXPECT_EQ(s.committedProgInsts, emu.stats().progInsts);
    EXPECT_EQ(s.committedKills, emu.stats().kills);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_LE(s.ipc(), static_cast<double>(cfg.issueWidth));
}

TEST(Core, NoDviConfigEliminatesNothing)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Perl, false);
    CoreConfig cfg;
    cfg.dvi = DviConfig::none();
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_EQ(s.savesEliminated, 0u);
    EXPECT_EQ(s.restoresEliminated, 0u);
    EXPECT_GT(s.savesSeen, 0u);
}

TEST(Core, EliminationMatchesFunctionalOracle)
{
    // Same binary, same LVM-Stack depth: the decode-side LVM
    // decisions must equal the architectural oracle's exactly.
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Perl, true);

    arch::EmulatorOptions opts;
    opts.lvmStackDepth = 16;
    arch::Emulator emu(exe, opts);
    emu.run();

    CoreConfig cfg;
    cfg.dvi = DviConfig::full();
    cfg.dvi.lvmStackDepth = 16;
    Core core(exe, cfg);
    const CoreStats &s = core.run();

    EXPECT_EQ(s.savesEliminated, emu.stats().saveElimOracle);
    EXPECT_EQ(s.restoresEliminated, emu.stats().restoreElimOracle);
    EXPECT_EQ(s.savesSeen, emu.stats().saves);
    EXPECT_EQ(s.restoresSeen, emu.stats().restores);
}

TEST(Core, LvmSchemeEliminatesOnlySaves)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Perl, true);
    CoreConfig cfg;
    cfg.dvi = DviConfig::lvmScheme();
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_GT(s.savesEliminated, 0u);
    EXPECT_EQ(s.restoresEliminated, 0u);
}

TEST(Core, DviImprovesIpcOnSaveHeavyCode)
{
    comp::Executable plain =
        smallBenchmark(workload::BenchmarkId::Perl, false, 20);
    comp::Executable edvi =
        smallBenchmark(workload::BenchmarkId::Perl, true, 20);

    CoreConfig cfg;
    cfg.maxInsts = 60000;
    cfg.dvi = DviConfig::none();
    Core base(plain, cfg);
    const double base_ipc = base.run().ipc();

    cfg.dvi = DviConfig::full();
    Core opt(edvi, cfg);
    const double opt_ipc = opt.run().ipc();
    EXPECT_GT(opt_ipc, base_ipc);
}

TEST(Core, MinimumRegisterFileDoesNotDeadlock)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Li, true);
    CoreConfig cfg;
    cfg.numPhysRegs = 33;  // one rename in flight at a time
    cfg.maxInsts = 5000;
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_GT(s.committedProgInsts, 0u);
    EXPECT_GT(s.renameStallCycles, 0u);
}

TEST(Core, IpcImprovesWithRegisterFileSize)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Gcc, false, 10);
    CoreConfig cfg;
    cfg.dvi = DviConfig::none();
    cfg.maxInsts = 30000;

    cfg.numPhysRegs = 34;
    Core small(exe, cfg);
    const double ipc_small = small.run().ipc();

    cfg.numPhysRegs = 96;
    Core big(exe, cfg);
    const double ipc_big = big.run().ipc();
    EXPECT_GT(ipc_big, ipc_small * 1.05);
}

TEST(Core, DviNarrowsTheRegisterFileGap)
{
    // The Fig. 5 effect: at a small file, I-DVI recovers a large
    // fraction of the IPC lost to rename stalls.
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Gcc, false, 10);
    CoreConfig cfg;
    cfg.maxInsts = 30000;
    cfg.numPhysRegs = 40;

    cfg.dvi = DviConfig::none();
    Core off(exe, cfg);
    const double ipc_off = off.run().ipc();

    cfg.dvi = DviConfig::idviOnly();
    Core on(exe, cfg);
    const double ipc_on = on.run().ipc();
    EXPECT_GT(ipc_on, ipc_off);
}

TEST(Core, FewerCachePortsHurt)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Vortex, false, 10);
    CoreConfig cfg;
    cfg.dvi = DviConfig::none();
    cfg.maxInsts = 30000;

    cfg.cachePorts = 1;
    Core one(exe, cfg);
    const double ipc1 = one.run().ipc();

    cfg.cachePorts = 3;
    Core three(exe, cfg);
    const double ipc3 = three.run().ipc();
    EXPECT_GT(ipc3, ipc1);
}

TEST(Core, MaxInstsBoundsTheRun)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Go, false, 1000);
    CoreConfig cfg;
    cfg.maxInsts = 10000;
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_GE(s.committedProgInsts, 10000u);
    EXPECT_LT(s.committedProgInsts, 12000u);
}

TEST(Core, BranchPredictionStatsAreSane)
{
    comp::Executable exe =
        smallBenchmark(workload::BenchmarkId::Go, false, 10);
    CoreConfig cfg;
    cfg.maxInsts = 30000;
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_GT(s.condBranches, 0u);
    EXPECT_LT(s.branchMispredicts, s.condBranches);
}

TEST(Core, StoresReachTheCacheExactlyOnce)
{
    comp::Executable exe = comp::compile(testprog::sumProgram(100));
    arch::Emulator emu(exe);
    emu.run();

    CoreConfig cfg;
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_EQ(s.storesExecuted, emu.stats().stores);
}

TEST(Core, Fig7EliminatesTheDeadPairs)
{
    comp::Executable exe = comp::compile(
        testprog::fig7Program(),
        comp::CompileOptions{comp::EdviPolicy::CallSites});
    CoreConfig cfg;
    cfg.dvi = DviConfig::full();
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_EQ(s.savesEliminated, 2u);
    EXPECT_EQ(s.restoresEliminated, 2u);
}

/** Property: every DVI mode runs every benchmark without tripping
 * internal invariants (conservation is checked inside run()). */
class CoreModeTest
    : public ::testing::TestWithParam<
          std::tuple<workload::BenchmarkId, int>>
{
};

TEST_P(CoreModeTest, RunsClean)
{
    const auto [id, mode] = GetParam();
    comp::Executable exe = smallBenchmark(id, mode == 2);
    CoreConfig cfg;
    cfg.maxInsts = 15000;
    cfg.dvi = mode == 0   ? DviConfig::none()
              : mode == 1 ? DviConfig::idviOnly()
                          : DviConfig::full();
    Core core(exe, cfg);
    const CoreStats &s = core.run();
    EXPECT_GT(s.committedProgInsts, 0u);
    EXPECT_GT(s.ipc(), 0.0);
}

std::string
coreModeTestName(
    const ::testing::TestParamInfo<std::tuple<workload::BenchmarkId,
                                              int>> &info)
{
    static const char *mode_names[] = {"none", "idvi", "full"};
    return workload::benchmarkName(std::get<0>(info.param)) +
           std::string("_") + mode_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CoreModeTest,
    ::testing::Combine(
        ::testing::ValuesIn(workload::allBenchmarks()),
        ::testing::Values(0, 1, 2)),
    coreModeTestName);

} // namespace
} // namespace uarch
} // namespace dvi
