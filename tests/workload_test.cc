/**
 * @file
 * Workload generator tests: structural validity, determinism, and
 * benchmark characteristics staying within calibrated envelopes.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "compiler/compile.hh"
#include "stats/counter.hh"
#include "workload/benchmarks.hh"

namespace dvi
{
namespace workload
{
namespace
{

class WorkloadTest : public ::testing::TestWithParam<BenchmarkId>
{
};

TEST_P(WorkloadTest, GeneratesValidModule)
{
    const prog::Module mod = generateBenchmark(GetParam());
    EXPECT_EQ(mod.validate(), "");
    EXPECT_GT(mod.procs.size(), 1u);
}

TEST_P(WorkloadTest, GenerationIsDeterministic)
{
    const prog::Module a = generateBenchmark(GetParam());
    const prog::Module b = generateBenchmark(GetParam());
    comp::Executable ea = comp::compile(a);
    comp::Executable eb = comp::compile(b);
    ASSERT_EQ(ea.code.size(), eb.code.size());
    for (std::size_t i = 0; i < ea.code.size(); ++i)
        ASSERT_EQ(ea.code[i], eb.code[i]) << "at " << i;
}

TEST_P(WorkloadTest, CharacteristicsWithinEnvelope)
{
    comp::Executable exe = comp::compile(
        generateBenchmark(GetParam()),
        comp::CompileOptions{comp::EdviPolicy::None});
    arch::Emulator emu(exe);
    emu.run(150000);
    const arch::EmulatorStats &s = emu.stats();

    // Call density between 0.1% and 5% of instructions (SPECint
    // range, Fig. 3).
    const double call_pct = percent(s.calls, s.progInsts);
    EXPECT_GE(call_pct, 0.1) << benchmarkName(GetParam());
    EXPECT_LE(call_pct, 5.0) << benchmarkName(GetParam());

    // Memory instructions 15-55%.
    const double mem_pct = percent(s.memRefs, s.progInsts);
    EXPECT_GE(mem_pct, 15.0);
    EXPECT_LE(mem_pct, 55.0);

    // Save/restore traffic exists and every call returns.
    EXPECT_GT(s.saves, 0u);
    EXPECT_GE(s.calls, s.returns);
}

TEST_P(WorkloadTest, TerminatesOnShortenedInput)
{
    GeneratorParams params = benchmarkParams(GetParam());
    params.mainIters = 1;
    comp::Executable exe =
        comp::compile(workload::generate(params));
    arch::Emulator emu(exe);
    // gcc's call tree is the largest at ~66M instructions per
    // iteration; everything is structurally finite (DAG + counted
    // loops + linear recursion).
    emu.run(200000000);
    EXPECT_TRUE(emu.halted()) << benchmarkName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadTest,
                         ::testing::ValuesIn(allBenchmarks()),
                         [](const auto &info) {
                             return benchmarkName(info.param);
                         });

TEST(Workload, LiRecursionIsDeep)
{
    comp::Executable exe =
        comp::compile(generateBenchmark(BenchmarkId::Li));
    arch::Emulator emu(exe);
    emu.run(200000);
    // li is the LVM-Stack stress case: deeper than the 16-entry
    // hardware structure.
    EXPECT_GT(emu.stats().maxCallDepth, 16u);
}

TEST(Workload, PerlEliminationIsHighest)
{
    // The calibration property behind Fig. 9's shape.
    double perl_rate = 0, go_rate = 0;
    for (auto id : {BenchmarkId::Perl, BenchmarkId::Go}) {
        comp::Executable exe = comp::compile(
            generateBenchmark(id),
            comp::CompileOptions{comp::EdviPolicy::CallSites});
        arch::EmulatorOptions opts;
        opts.lvmStackDepth = 16;
        arch::Emulator emu(exe, opts);
        emu.run(200000);
        const auto &s = emu.stats();
        const double rate =
            ratio(s.saveElimOracle + s.restoreElimOracle,
                  s.saves + s.restores);
        if (id == BenchmarkId::Perl)
            perl_rate = rate;
        else
            go_rate = rate;
    }
    EXPECT_GT(perl_rate, 0.6);  // paper: 74.6%
    EXPECT_LT(go_rate, 0.35);   // paper: go is the weakest
    EXPECT_GT(perl_rate, go_rate * 2);
}

TEST(Workload, BenchmarkNamesAreUnique)
{
    std::set<std::string> names;
    for (auto id : allBenchmarks())
        names.insert(benchmarkName(id));
    EXPECT_EQ(names.size(), allBenchmarks().size());
}

TEST(Workload, SaveRestoreSubsetOfAll)
{
    auto all = allBenchmarks();
    for (auto id : saveRestoreBenchmarks())
        EXPECT_NE(std::find(all.begin(), all.end(), id), all.end());
    EXPECT_EQ(saveRestoreBenchmarks().size(), 6u);
}

TEST(Workload, CustomParamsRespected)
{
    GeneratorParams params;
    params.seed = 99;
    params.numProcs = 4;
    params.recursionDepth = 6;
    const prog::Module mod = generate(params);
    EXPECT_EQ(mod.procs.size(), 5u);  // main + 4
    EXPECT_EQ(mod.validate(), "");
}

TEST(WorkloadDeath, ZeroProcsIsFatal)
{
    GeneratorParams params;
    params.numProcs = 0;
    EXPECT_DEATH((void)generate(params), "procedure");
}

} // namespace
} // namespace workload
} // namespace dvi
