#!/usr/bin/env python3
"""Compare a BENCH_core_throughput.json run against the committed
baseline and fail on a large throughput regression.

Usage:
    tools/check_bench.py CURRENT.json BASELINE.json [--max-regression 0.30]

Compares total simulated-instructions-per-second. The threshold is
deliberately loose (30% by default): the baseline was recorded on one
machine and CI runners differ, so this is a smoke test for large
regressions (an accidental O(window) scan creeping back into the
timing core), not a microbenchmark.
"""

import argparse
import json
import sys


def main():
    p = argparse.ArgumentParser()
    p.add_argument("current")
    p.add_argument("baseline")
    p.add_argument("--max-regression", type=float, default=0.30,
                   help="maximum allowed fractional drop in total "
                        "insts/sec (default 0.30)")
    args = p.parse_args()

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    cur_ips = cur["total"]["instsPerSec"]
    base_ips = base["total"]["instsPerSec"]
    if base_ips <= 0:
        print("baseline total.instsPerSec is not positive; "
              "regenerate the baseline", file=sys.stderr)
        return 2

    ratio = cur_ips / base_ips
    print(f"throughput: current {cur_ips / 1e6:.2f} Minsts/s, "
          f"baseline {base_ips / 1e6:.2f} Minsts/s "
          f"(ratio {ratio:.3f})")

    for preset, agg in sorted(cur.get("presets", {}).items()):
        b = base.get("presets", {}).get(preset)
        if b and b.get("instsPerSec", 0) > 0:
            print(f"  {preset:8s} {agg['instsPerSec'] / 1e6:8.2f} "
                  f"vs {b['instsPerSec'] / 1e6:8.2f} Minsts/s "
                  f"({agg['instsPerSec'] / b['instsPerSec']:.3f}x)")

    if ratio < 1.0 - args.max_regression:
        print(f"FAIL: throughput regressed by "
              f"{100 * (1 - ratio):.1f}% "
              f"(> {100 * args.max_regression:.0f}% allowed)",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
