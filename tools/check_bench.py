#!/usr/bin/env python3
"""Compare a BENCH_core_throughput.json run against the committed
baseline and fail on a large throughput regression.

Usage:
    tools/check_bench.py CURRENT.json BASELINE.json \
        [--max-regression 0.30] [--min-tier-speedup 0]

Compares total simulated-instructions-per-second. The threshold is
deliberately loose (30% by default): the baseline was recorded on one
machine and CI runners differ, so this is a smoke test for large
regressions (an accidental O(window) scan creeping back into the
timing core), not a microbenchmark. The total covers the timing rows
only, so adding, removing, or rescaling functional-tier rows is a
reported step change (the per-scenario table marks rows "(new)" or
"(gone)"), never a spurious regression in the gate.

--min-tier-speedup additionally gates the report's functional-tier
ratio (tier.speedup: translation-cache insts/sec over interpreter
insts/sec on the same oracle rows). 0 disables the gate; reports
that predate the tier rows pass it vacuously.

Exit status: 0 OK, 1 regression, 2 unusable input (missing or
malformed report/baseline) — always with a one-line explanation, so
a broken CI artifact reads as "fix the file", not a traceback.
"""

import argparse
import json
import numbers
import sys


def die(message):
    print(f"check_bench: {message}", file=sys.stderr)
    sys.exit(2)


def load_report(path, role):
    """Load one JSON report; exit 2 with a clear error if it is
    missing, unreadable, or not a JSON object."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {role} '{path}': {e.strerror or e}")
    except json.JSONDecodeError as e:
        die(f"{role} '{path}' is not valid JSON: "
            f"line {e.lineno}, column {e.colno}: {e.msg}")
    if not isinstance(doc, dict):
        die(f"{role} '{path}' is not a JSON object "
            f"(got {type(doc).__name__})")
    return doc


def total_ips(doc, path, role):
    """Extract total.instsPerSec, with errors naming the path."""
    total = doc.get("total")
    if not isinstance(total, dict):
        die(f"{role} '{path}' has no \"total\" object; is this a "
            f"BENCH_core_throughput report?")
    ips = total.get("instsPerSec")
    if not isinstance(ips, numbers.Real) or isinstance(ips, bool):
        die(f"{role} '{path}': total.instsPerSec is missing or not "
            f"a number")
    return float(ips)


def scenario_ips(doc):
    """Map (benchmark, preset-or-label) -> instsPerSec from the
    report's per-scenario rows; empty when the report predates
    them."""
    rows = doc.get("scenarios")
    out = {}
    if not isinstance(rows, list):
        return out
    for row in rows:
        if not isinstance(row, dict):
            continue
        bench = row.get("benchmark")
        preset = row.get("preset")
        ips = row.get("instsPerSec")
        if (isinstance(bench, str) and isinstance(preset, str) and
                isinstance(ips, numbers.Real) and
                not isinstance(ips, bool)):
            out[(bench, preset)] = float(ips)
    return out


def tier_speedup(doc):
    """The functional-tier speedup (tier.speedup), or None when the
    report has no tier rows."""
    tier = doc.get("tier")
    if not isinstance(tier, dict):
        return None
    speedup = tier.get("speedup")
    if (not isinstance(speedup, numbers.Real) or
            isinstance(speedup, bool) or speedup <= 0):
        return None
    return float(speedup)


def print_scenario_deltas(cur, base):
    """Per-scenario delta table, baseline vs current, printed on
    every run (informational: the pass/fail gate stays on the
    total). Scenarios missing from either side are noted, never
    silently dropped."""
    cur_rows = scenario_ips(cur)
    base_rows = scenario_ips(base)
    if not cur_rows or not base_rows:
        return
    print(f"  {'scenario':28s} {'current':>9s} {'baseline':>9s} "
          f"{'delta':>8s}")
    for key in sorted(set(cur_rows) | set(base_rows)):
        name = f"{key[0]}/{key[1]}"
        c = cur_rows.get(key)
        b = base_rows.get(key)
        if c is None:
            print(f"  {name:28s} {'-':>9s} {b / 1e6:8.2f}M "
                  f"{'(gone)':>8s}")
        elif b is None or b <= 0:
            print(f"  {name:28s} {c / 1e6:8.2f}M {'-':>9s} "
                  f"{'(new)':>8s}")
        else:
            print(f"  {name:28s} {c / 1e6:8.2f}M {b / 1e6:8.2f}M "
                  f"{100 * (c / b - 1):+7.1f}%")


def main():
    p = argparse.ArgumentParser()
    p.add_argument("current")
    p.add_argument("baseline")
    p.add_argument("--max-regression", type=float, default=0.30,
                   help="maximum allowed fractional drop in total "
                        "insts/sec (default 0.30)")
    p.add_argument("--min-tier-speedup", type=float, default=0.0,
                   help="minimum required functional-tier speedup "
                        "(tier.speedup: translation cache over "
                        "interpreter); 0 disables (default)")
    args = p.parse_args()

    cur = load_report(args.current, "current report")
    base = load_report(args.baseline, "baseline")

    cur_ips = total_ips(cur, args.current, "current report")
    base_ips = total_ips(base, args.baseline, "baseline")
    if base_ips <= 0:
        die(f"baseline '{args.baseline}' total.instsPerSec is not "
            f"positive; regenerate the baseline")

    ratio = cur_ips / base_ips
    print(f"throughput: current {cur_ips / 1e6:.2f} Minsts/s, "
          f"baseline {base_ips / 1e6:.2f} Minsts/s "
          f"(ratio {ratio:.3f})")

    cur_presets = cur.get("presets")
    base_presets = base.get("presets")
    if isinstance(cur_presets, dict) and isinstance(base_presets,
                                                   dict):
        for preset, agg in sorted(cur_presets.items()):
            b = base_presets.get(preset)
            if (isinstance(agg, dict) and isinstance(b, dict) and
                    isinstance(agg.get("instsPerSec"),
                               numbers.Real) and
                    isinstance(b.get("instsPerSec"),
                               numbers.Real) and
                    b["instsPerSec"] > 0):
                print(f"  {preset:8s} "
                      f"{agg['instsPerSec'] / 1e6:8.2f} "
                      f"vs {b['instsPerSec'] / 1e6:8.2f} Minsts/s "
                      f"({agg['instsPerSec'] / b['instsPerSec']:.3f}x)")

    print_scenario_deltas(cur, base)

    cur_speedup = tier_speedup(cur)
    base_speedup = tier_speedup(base)
    if cur_speedup is not None:
        against = (f" (baseline {base_speedup:.2f}x)"
                   if base_speedup is not None else "")
        print(f"functional tier speedup: {cur_speedup:.2f}x"
              f"{against}")

    if ratio < 1.0 - args.max_regression:
        print(f"FAIL: throughput regressed by "
              f"{100 * (1 - ratio):.1f}% "
              f"(> {100 * args.max_regression:.0f}% allowed)",
              file=sys.stderr)
        return 1
    if args.min_tier_speedup > 0 and cur_speedup is not None and \
            cur_speedup < args.min_tier_speedup:
        print(f"FAIL: functional tier speedup {cur_speedup:.2f}x "
              f"is below the required "
              f"{args.min_tier_speedup:.2f}x",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
