#!/usr/bin/env python3
"""Prove every header under src/ compiles standalone.

Usage:
    tools/check_headers.py [--compiler CXX] [--jobs N] [HEADER...]

Each src/**/*.hh is compiled as its own translation unit (a generated
.cc whose only content is `#include "<header>"`), with the same
include root and language standard as the real build. A header that
sneaks a dependency in through whoever happened to include it first
breaks here, not in some later reshuffle.

With explicit HEADER arguments only those files are checked (paths
relative to the repo root or absolute).

Exit status: 0 all headers self-contained, 1 any failed, 2 unusable
input. Failures replay the compiler diagnostics, one header per
block.
"""

import argparse
import concurrent.futures
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
STD = "c++17"


def find_headers():
    headers = []
    for dirpath, _dirnames, filenames in os.walk(SRC):
        for name in sorted(filenames):
            if name.endswith(".hh"):
                headers.append(os.path.join(dirpath, name))
    return sorted(headers)


def check_one(compiler, header):
    """Compile one header standalone; returns (header, output)."""
    rel = os.path.relpath(header, SRC)
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", delete=False) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, f"-std={STD}", "-Wall", "-Wextra",
             "-fsyntax-only", "-I", SRC, tu_path],
            capture_output=True, text=True)
        if proc.returncode == 0:
            return header, None
        return header, proc.stderr or proc.stdout or "compiler failed"
    finally:
        os.unlink(tu_path)


def main():
    p = argparse.ArgumentParser()
    p.add_argument("headers", nargs="*", metavar="HEADER")
    p.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    p.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = p.parse_args()

    if args.headers:
        headers = [os.path.abspath(h) for h in args.headers]
        missing = [h for h in headers if not os.path.isfile(h)]
        if missing:
            print(f"check_headers: no such file: "
                  f"{', '.join(missing)}", file=sys.stderr)
            return 2
    else:
        headers = find_headers()
    if not headers:
        print("check_headers: no headers found under src/",
              file=sys.stderr)
        return 2

    failed = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for header, diag in pool.map(
                lambda h: check_one(args.compiler, h), headers):
            if diag is not None:
                failed.append((header, diag))

    for header, diag in failed:
        rel = os.path.relpath(header, REPO)
        print(f"check_headers: {rel} is not self-contained:",
              file=sys.stderr)
        for line in diag.rstrip().splitlines():
            print(f"  {line}", file=sys.stderr)

    ok = len(headers) - len(failed)
    print(f"check_headers: {ok}/{len(headers)} headers "
          f"self-contained")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
