#!/usr/bin/env python3
"""Validate telemetry NDJSON captures against the event schema.

Usage:
    tools/check_telemetry.py CAPTURE.ndjson... [--expect-kind KIND]...

Multiple captures validate in one invocation — each file is an
independent stream (seq restarts at 0 per file), every file is
checked even after one fails, and the exit status reflects the worst
result. Failures name the offending file and line.

Checks, per line:
  - the line parses as one JSON object (the stream is NDJSON and
    line-atomic; a torn or interleaved write fails here);
  - the envelope is well-formed: ts is a non-negative number, seq is
    an integer, kind is a known token, job (when present) is a
    non-negative integer;
  - seq is gapless from 0 in file order (the sink assigns seq under
    its lock, so the capture order is the emission order);
  - ts never decreases;
  - every field the schema requires for that kind is present with
    the right JSON type (DESIGN.md §10 is the human-readable copy of
    the table below).

--expect-kind KIND (repeatable) additionally requires at least one
event of KIND in *each* capture — CI uses it to prove the layers it
exercised actually emitted.

Exit status: 0 all captures valid, 1 schema violation in any, 2
unusable input. Errors name the file and line number.
"""

import argparse
import json
import sys

NUM = (int, float)

# kind -> {field: type tuple}; job_required marks kinds whose events
# must be attributed to a job / program index.
SCHEMA = {
    "campaign-begin": {"campaign": str, "jobs": int, "workers": int},
    "job-begin": {"runner": str, "benchmark": str, "preset": str,
                  "maxInsts": int},
    "job-end": {"insts": int, "wallSeconds": NUM,
                "instsPerSec": NUM},
    "progress": {"done": int, "total": int},
    "campaign-end": {"campaign": str, "jobs": int, "cacheHits": int,
                     "cacheMisses": int, "wallSeconds": NUM},
    "phase-begin": {"phase": str},
    "phase-end": {"phase": str, "durationSeconds": NUM},
    "core-sample": {"insts": int, "cycles": int, "ipc": NUM},
    "metrics": {"counters": dict, "gauges": dict,
                "histograms": dict},
    "fuzz-begin": {"seed": int, "programs": int},
    "fuzz-verdict": {"structured": bool, "ok": bool, "insts": int,
                     "halted": bool},
    "fuzz-end": {"programsRun": int, "failures": int,
                 "wallSeconds": NUM},
    "log": {"level": str, "message": str},
    "retry": {"attempt": int, "backoffMs": int, "fault": str},
    "error": {"fault": str, "message": str, "retries": int},
    "watchdog": {"limitMs": int},
    "lint": {"severity": str, "rule": str, "unit": str,
             "message": str},
    "lint-summary": {"units": int, "findings": int, "errors": int,
                     "warnings": int, "infos": int},
}

# kind -> {field: type tuple} for fields that may be absent but must
# be well-typed when present. A lint finding's site narrows from the
# whole module down to one machine instruction (pc) or one IR
# instruction (block/inst) depending on the rule that fired.
OPTIONAL = {
    "lint": {"proc": str, "pc": int, "block": int, "inst": int},
}

JOB_REQUIRED = {"job-begin", "job-end", "core-sample",
                "fuzz-verdict", "retry", "error", "watchdog"}


class ValidationError(Exception):
    """A schema violation; str() is the diagnostic."""


def fail(lineno, message):
    raise ValidationError(f"line {lineno}: {message}")


def check_event(lineno, ev):
    if not isinstance(ev, dict):
        fail(lineno, f"event is {type(ev).__name__}, not an object")
    for field in ("ts", "seq", "kind"):
        if field not in ev:
            fail(lineno, f"missing envelope field '{field}'")
    if (not isinstance(ev["ts"], NUM) or isinstance(ev["ts"], bool)
            or ev["ts"] < 0):
        fail(lineno, f"ts is not a non-negative number: {ev['ts']!r}")
    if not isinstance(ev["seq"], int) or isinstance(ev["seq"], bool):
        fail(lineno, f"seq is not an integer: {ev['seq']!r}")
    kind = ev["kind"]
    if kind not in SCHEMA:
        fail(lineno, f"unknown kind {kind!r}")
    if "job" in ev and (not isinstance(ev["job"], int)
                        or isinstance(ev["job"], bool)
                        or ev["job"] < 0):
        fail(lineno, f"job is not a non-negative integer: "
                     f"{ev['job']!r}")
    if kind in JOB_REQUIRED and "job" not in ev:
        fail(lineno, f"kind {kind!r} requires a job field")
    for field, want in SCHEMA[kind].items():
        if field not in ev:
            fail(lineno, f"kind {kind!r} missing field '{field}'")
        v = ev[field]
        # bool is an int subclass in Python; only accept it where
        # the schema says bool.
        if want is not bool and isinstance(v, bool):
            fail(lineno, f"{kind}.{field} is a bool, want "
                         f"{want}: {v!r}")
        if not isinstance(v, want):
            fail(lineno, f"{kind}.{field} has wrong type: {v!r} "
                         f"(want {want})")
    for field, want in OPTIONAL.get(kind, {}).items():
        if field not in ev:
            continue
        v = ev[field]
        if isinstance(v, bool) or not isinstance(v, want):
            fail(lineno, f"{kind}.{field} has wrong type: {v!r} "
                         f"(want {want})")


def check_capture(path, expect_kinds):
    """Validate one capture; returns its exit code (0/1/2) and
    prints the per-file verdict."""
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_telemetry: {path}: cannot read: "
              f"{e.strerror or e}", file=sys.stderr)
        return 2

    if not lines:
        print(f"check_telemetry: {path}: capture is empty",
              file=sys.stderr)
        return 2

    kinds_seen = {}
    prev_ts = None
    try:
        for i, line in enumerate(lines, start=1):
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(i, f"not valid JSON ({e.msg}): {line[:80]!r}")
            check_event(i, ev)
            if ev["seq"] != i - 1:
                fail(i, f"seq {ev['seq']} out of order (expected "
                        f"{i - 1}: gapless from 0 in emission "
                        f"order)")
            if prev_ts is not None and ev["ts"] < prev_ts:
                fail(i, f"ts went backwards: {ev['ts']} < {prev_ts}")
            prev_ts = ev["ts"]
            kinds_seen[ev["kind"]] = kinds_seen.get(ev["kind"],
                                                    0) + 1
    except ValidationError as e:
        print(f"check_telemetry: {path}: {e}", file=sys.stderr)
        return 1

    missing = [k for k in expect_kinds if k not in kinds_seen]
    if missing:
        print(f"check_telemetry: {path}: no events of kind: "
              f"{', '.join(missing)} (saw: "
              f"{', '.join(sorted(kinds_seen))})", file=sys.stderr)
        return 1

    summary = ", ".join(f"{k}={n}"
                        for k, n in sorted(kinds_seen.items()))
    print(f"check_telemetry: {path}: {len(lines)} events OK "
          f"({summary})")
    return 0


def main():
    p = argparse.ArgumentParser()
    p.add_argument("captures", nargs="+", metavar="capture")
    p.add_argument("--expect-kind", action="append", default=[],
                   help="require at least one event of this kind "
                        "in each capture (repeatable)")
    args = p.parse_args()

    # Every capture is checked even after a failure, so one run
    # reports all broken files; the worst verdict wins.
    codes = [check_capture(path, args.expect_kind)
             for path in args.captures]
    failed = [path for path, code in zip(args.captures, codes)
              if code != 0]
    if failed:
        print(f"check_telemetry: {len(failed)} of "
              f"{len(args.captures)} capture(s) failed: "
              f"{', '.join(failed)}", file=sys.stderr)
    return max(codes)


if __name__ == "__main__":
    sys.exit(main())
