/**
 * @file
 * dvi-fuzz — differential-validation fuzzer CLI.
 *
 * Proves the DVI invariance claim (§7: killing dead values is
 * invisible to architectural state) on streams of generated
 * adversarial programs, via the layered oracle in src/fuzz/. Every
 * run logs its seed and honors DVI_TEST_SEED, so any failure is
 * replayable; failures are minimized and written as self-contained
 * JSON repro manifests that `--replay` re-runs byte-identically.
 *
 * Usage:
 *   dvi-fuzz [--seed N] [--programs K] [--max-insts M]
 *            [--stack-depth D] [--structured-fraction F]
 *            [--no-core] [--no-dense] [--no-static] [--no-minimize]
 *            [--repro-prefix PATH]
 *            [--inject-kill-bit ORDINAL:REG]
 *            [--telemetry FILE|-] [--metrics-interval N]
 *            [--progress]
 *   dvi-fuzz --replay FILE [--emit FILE]
 *
 * Exit status: 0 when every program passes (or a replayed repro
 * still fails exactly as recorded), 1 on failures.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "base/cli.hh"
#include "base/logging.hh"
#include "base/test_seed.hh"
#include "fuzz/campaign.hh"
#include "fuzz/repro.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"

using namespace dvi;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "       %s --replay FILE [--emit FILE]\n"
        "\n"
        "campaign options:\n"
        "  --seed N        campaign seed (default 1; DVI_TEST_SEED\n"
        "                  overrides when --seed is absent)\n"
        "  --programs K    programs to generate (default 200)\n"
        "  --max-insts M   per-program differential budget\n"
        "                  (default 200000)\n"
        "  --stack-depth D LVM-Stack depth for oracle and core\n"
        "                  (default 16)\n"
        "  --structured-fraction F  share of paper-shaped programs\n"
        "                  in the mix (default 0.25)\n"
        "  --no-core       skip the uarch::Core commit-stream layer\n"
        "  --no-dense      skip the Dense-policy lockstep layer\n"
        "  --no-static     skip the static kill-mask verifier\n"
        "  --no-minimize   write failing programs unminimized\n"
        "  --repro-prefix PATH  repro file prefix\n"
        "                  (default fuzz-repro)\n"
        "  --inject-kill-bit ORDINAL:REG  corrupt kill #ORDINAL\n"
        "                  (mod kill count) by asserting REG dead —\n"
        "                  fault injection to prove detection\n"
        "  --telemetry F   stream NDJSON telemetry events to file F\n"
        "                  ('-' = stderr)\n"
        "  --metrics-interval N  flush a `metrics` event every N ms\n"
        "                  (requires --telemetry)\n"
        "  --progress      live progress line on stderr, rendered\n"
        "                  from the telemetry event stream\n"
        "\n"
        "replay options:\n"
        "  --replay FILE   load a repro manifest, re-run its oracle,\n"
        "                  verify the recorded failure reproduces\n"
        "  --emit FILE     re-emit the loaded repro (byte-identical\n"
        "                  to its input by construction)\n",
        argv0, argv0);
}

using cli::parseUint;
using cli::readFile;

double
parseFraction(const char *flag, const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    fatal_if(end == text || *end != '\0' || v < 0.0 || v > 1.0,
             "bad value for ", flag, ": '", text,
             "' (want 0..1)");
    return v;
}

int
doReplay(const std::string &path, const std::string &emit_path)
{
    fuzz::Repro repro;
    const std::string err = fuzz::reproFromJson(readFile(path),
                                                repro);
    fatal_if(!err.empty(), path, ": ", err);

    if (!emit_path.empty()) {
        std::ofstream out(emit_path, std::ios::binary);
        fatal_if(!out, "cannot open '", emit_path,
                 "' for writing");
        out << fuzz::reproToJson(repro);
        out.flush();
        fatal_if(!out, "write to '", emit_path, "' failed");
    }

    const fuzz::OracleReport rep = fuzz::replay(repro);
    if (rep.ok) {
        std::fprintf(stderr,
                     "dvi-fuzz: repro %s did NOT reproduce "
                     "(recorded failure: %s)\n",
                     path.c_str(), repro.failure.c_str());
        return 1;
    }
    const bool same = rep.failure == repro.failure;
    std::fprintf(stderr,
                 "dvi-fuzz: repro %s reproduces%s: %s\n",
                 path.c_str(),
                 same ? " exactly" : " (different message)",
                 rep.failure.c_str());
    if (!same) {
        std::fprintf(stderr, "dvi-fuzz: recorded failure was: %s\n",
                     repro.failure.c_str());
    }
    return same ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    fuzz::FuzzConfig cfg;
    cfg.programs = 200;
    std::string replay_path;
    std::string emit_path;
    bool seed_given = false;
    std::string telemetry_path;
    unsigned metrics_interval = 0;
    bool progress = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--seed") {
            cfg.seed = parseUint("--seed", value());
            seed_given = true;
        } else if (arg == "--programs") {
            cfg.programs = static_cast<unsigned>(
                parseUint("--programs", value()));
        } else if (arg == "--max-insts") {
            cfg.oracle.maxProgInsts =
                parseUint("--max-insts", value());
        } else if (arg == "--stack-depth") {
            cfg.oracle.lvmStackDepth = static_cast<unsigned>(
                parseUint("--stack-depth", value()));
        } else if (arg == "--structured-fraction") {
            cfg.structuredFraction =
                parseFraction("--structured-fraction", value());
        } else if (arg == "--no-core") {
            cfg.oracle.runCore = false;
        } else if (arg == "--no-dense") {
            cfg.oracle.runDense = false;
        } else if (arg == "--no-static") {
            cfg.oracle.staticCheck = false;
        } else if (arg == "--no-minimize") {
            cfg.minimizeFailures = false;
        } else if (arg == "--repro-prefix") {
            cfg.reproPrefix = value();
        } else if (arg == "--inject-kill-bit") {
            const std::string kv = value();
            const std::size_t colon = kv.find(':');
            fatal_if(colon == std::string::npos || colon == 0 ||
                         colon + 1 >= kv.size(),
                     "--inject-kill-bit wants ORDINAL:REG, got '",
                     kv, "'");
            cfg.oracle.fault.enabled = true;
            cfg.oracle.fault.killOrdinal = static_cast<unsigned>(
                parseUint("--inject-kill-bit",
                          kv.substr(0, colon).c_str()));
            const std::uint64_t reg = parseUint(
                "--inject-kill-bit", kv.substr(colon + 1).c_str());
            fatal_if(reg == 0 || reg >= 32,
                     "--inject-kill-bit register must be 1..31");
            cfg.oracle.fault.reg = static_cast<RegIndex>(reg);
        } else if (arg == "--telemetry") {
            telemetry_path = value();
        } else if (arg == "--metrics-interval") {
            metrics_interval = static_cast<unsigned>(
                parseUint("--metrics-interval", value()));
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--replay") {
            replay_path = value();
        } else if (arg == "--emit") {
            emit_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '", arg, "'");
        }
    }

    if (!replay_path.empty())
        return doReplay(replay_path, emit_path);
    fatal_if(!emit_path.empty(),
             "--emit only combines with --replay");

    if (!seed_given)
        cfg.seed = testSeedQuiet(cfg.seed);
    std::fprintf(stderr,
                 "dvi-fuzz: seed %llu, %u programs, budget %llu "
                 "insts, stack depth %u%s (override seed with "
                 "--seed or DVI_TEST_SEED)\n",
                 static_cast<unsigned long long>(cfg.seed),
                 cfg.programs,
                 static_cast<unsigned long long>(
                     cfg.oracle.maxProgInsts),
                 cfg.oracle.lvmStackDepth,
                 cfg.oracle.fault.enabled ? ", fault injection ON"
                                          : "");

    fatal_if(metrics_interval && telemetry_path.empty(),
             "--metrics-interval requires --telemetry");
    std::unique_ptr<obs::TelemetrySink> sink;
    if (!telemetry_path.empty())
        sink = obs::TelemetrySink::open(telemetry_path);
    else if (progress)
        sink = std::make_unique<obs::TelemetrySink>();
    obs::ProgressRenderer renderer;
    if (sink && progress)
        sink->addObserver(
            [&renderer](const obs::Event &e) { renderer.observe(e); });
    obs::MetricRegistry metrics;
    std::unique_ptr<obs::MetricFlusher> flusher;
    if (sink) {
        cfg.telemetry = sink.get();
        cfg.metrics = &metrics;
        obs::setGlobalSink(sink.get());
        if (metrics_interval)
            flusher = std::make_unique<obs::MetricFlusher>(
                metrics, *sink, metrics_interval);
    }

    const fuzz::FuzzResult result =
        fuzz::runFuzzCampaign(cfg, stderr);
    flusher.reset();
    if (sink) {
        metrics.flush(*sink);
        obs::setGlobalSink(nullptr);
    }
    std::fprintf(
        stderr,
        "dvi-fuzz: %u programs (%u completed in budget), %llu "
        "program insts diffed, %llu static kills, %llu saves + "
        "%llu restores eliminable, %u failure%s\n",
        result.programsRun, result.halted,
        static_cast<unsigned long long>(result.totalProgInsts),
        static_cast<unsigned long long>(result.totalStaticKills),
        static_cast<unsigned long long>(
            result.totalSavesEliminated),
        static_cast<unsigned long long>(
            result.totalRestoresEliminated),
        result.failures, result.failures == 1 ? "" : "s");
    return result.failures ? 1 : 0;
}
