/**
 * @file
 * dvi-lint — static IR and binary verification CLI.
 *
 * Lints anything the repo can name: every registered scenario's
 * binaries (--all, the default), one scenario (--scenario), a
 * campaign manifest (--manifest), a fuzz repro (--repro), or a
 * freshly generated fuzz corpus (--fuzz N, byte-identical to the
 * corpus dvi-fuzz would generate from the same seed). Each unit runs
 * the src/analysis rule pipeline: IR structure, def-before-use and
 * unreachable-code checks on the module, then machine CFG integrity
 * and the independent E-DVI kill-mask soundness proof on every
 * compiled (benchmark, policy) variant.
 *
 * `--inject-kill-bit ORDINAL:REG` corrupts one kill instruction in
 * every E-DVI binary before linting — the fault-detection proof: a
 * clean tree must exit 0, an injected fault must exit 1 with an
 * `edvi-kill-live` finding naming the exact site.
 *
 * Exit status: 0 when no Error/Warn findings (Info is advisory),
 * 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hh"
#include "base/cli.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/test_seed.hh"
#include "compiler/compile.hh"
#include "driver/scenario_registry.hh"
#include "fuzz/oracle.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/repro.hh"
#include "obs/telemetry.hh"
#include "sim/manifest.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"

using namespace dvi;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "what to lint (default: --all):\n"
        "  --all             every registered scenario's binaries\n"
        "  --scenario NAME   one registered scenario\n"
        "  --manifest FILE   a campaign manifest's binaries\n"
        "  --repro FILE      a fuzz repro's program and binaries\n"
        "  --fuzz N          N generated fuzz programs (the corpus\n"
        "                    dvi-fuzz would generate from --seed)\n"
        "  --list            list registered scenario names\n"
        "\n"
        "options:\n"
        "  --seed S          fuzz corpus seed (default 1;\n"
        "                    DVI_TEST_SEED overrides when absent)\n"
        "  --structured-fraction F  share of paper-shaped programs\n"
        "                    in the fuzz corpus (default 0.25)\n"
        "  --advisory        also run the Info density rules\n"
        "                    (ir-dead-store, edvi-kill-redundant,\n"
        "                    edvi-kill-missed); never affects the\n"
        "                    exit status\n"
        "  --inject-kill-bit ORDINAL:REG  corrupt kill #ORDINAL (mod\n"
        "                    kill count) in every E-DVI binary by\n"
        "                    asserting REG dead before linting\n"
        "  --json            print the finding report as JSON\n"
        "  --telemetry F     stream `lint` NDJSON events to file F\n"
        "                    ('-' = stderr)\n"
        "  --quiet           suppress the findings table\n",
        argv0);
}

using cli::parseUint;
using cli::readFile;

struct LintRun
{
    analysis::LintOptions opts;
    fuzz::FaultSpec fault;
    analysis::FindingReport report;
    std::size_t units = 0;
    std::size_t binaries = 0;
    std::size_t faulted = 0;

    /** Modules already linted, by unit name (scenarios share
     * benchmarks; lint each module once). */
    std::set<std::string> seenModules;
    /** (unit name, policy) binaries already linted. */
    std::set<std::pair<std::string, int>> seenBinaries;

    void
    lintModule(const std::string &unit, const prog::Module &mod)
    {
        if (!seenModules.insert(unit).second)
            return;
        ++units;
        prog::Module named = mod;
        named.name = unit;
        report.merge(analysis::lintModule(named, opts));
    }

    void
    lintBinary(const std::string &unit, const prog::Module &mod,
               comp::EdviPolicy policy)
    {
        if (!seenBinaries
                 .insert({unit, static_cast<int>(policy)})
                 .second)
            return;
        ++binaries;
        comp::CompileOptions copts;
        copts.edvi = policy;
        comp::Executable exe = comp::compile(mod, copts);
        exe.name = unit + "/" + sim::edviPolicyName(policy);
        if (fault.enabled && fuzz::applyKillFault(exe, fault))
            ++faulted;
        report.merge(analysis::lintExecutable(exe, opts));
    }

    /** Lint the module plus one binary per distinct policy. */
    void
    lintUnit(const std::string &unit, const prog::Module &mod,
             const std::set<comp::EdviPolicy> &policies)
    {
        lintModule(unit, mod);
        // Compiling structurally broken IR would panic; the module
        // findings already tell the story.
        if (!analysis::firstModuleError(mod).empty())
            return;
        for (comp::EdviPolicy p : policies)
            lintBinary(unit, mod, p);
    }
};

/** Distinct (benchmark, policy) pairs a scenario list references. */
void
lintScenarios(LintRun &run,
              const std::vector<sim::Scenario> &scenarios)
{
    std::map<workload::BenchmarkId, std::set<comp::EdviPolicy>>
        variants;
    for (const sim::Scenario &s : scenarios)
        variants[s.workload].insert(s.binary.edvi);
    for (const auto &[id, policies] : variants) {
        run.lintUnit(workload::benchmarkName(id),
                     workload::generateBenchmark(id), policies);
    }
}

void
lintRegistered(LintRun &run, const std::string &name)
{
    const driver::RegisteredScenario &s = driver::scenarioFor(name);
    const driver::Campaign campaign =
        s.build(driver::resolveScenarioInsts(s, 0));
    std::vector<sim::Scenario> scenarios;
    for (const driver::JobSpec &job : campaign.jobs())
        scenarios.push_back(job.scenario);
    lintScenarios(run, scenarios);
}

void
lintFuzzCorpus(LintRun &run, std::uint64_t seed, std::uint64_t count,
               double structured_fraction)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        // Mirrors fuzz::runFuzzCampaign's program derivation so
        // "lint the corpus" and "fuzz the corpus" see the same
        // programs.
        Rng rng(mixSeed(seed, i));
        const bool structured = rng.chance(structured_fraction);
        const prog::Module mod =
            structured
                ? workload::generate(workload::randomParams(rng))
                : fuzz::generateProgram(
                      fuzz::randomProgramParams(rng));
        run.lintUnit("fuzz-" + std::to_string(i), mod,
                     {comp::EdviPolicy::None,
                      comp::EdviPolicy::CallSites,
                      comp::EdviPolicy::Dense});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    LintRun run;
    std::vector<std::string> scenario_names;
    bool all = false;
    bool list = false;
    bool json = false;
    bool quiet = false;
    std::string manifest_path;
    std::string repro_path;
    std::uint64_t fuzz_count = 0;
    std::uint64_t seed = 1;
    bool seed_given = false;
    double structured_fraction = 0.25;
    std::string telemetry_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--scenario") {
            scenario_names.push_back(value());
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--manifest") {
            manifest_path = value();
        } else if (arg == "--repro") {
            repro_path = value();
        } else if (arg == "--fuzz") {
            fuzz_count = parseUint("--fuzz", value());
        } else if (arg == "--seed") {
            seed = parseUint("--seed", value());
            seed_given = true;
        } else if (arg == "--structured-fraction") {
            char *end = nullptr;
            const char *text = value();
            structured_fraction = std::strtod(text, &end);
            fatal_if(end == text || *end != '\0' ||
                         structured_fraction < 0.0 ||
                         structured_fraction > 1.0,
                     "bad value for --structured-fraction: '", text,
                     "' (want 0..1)");
        } else if (arg == "--advisory") {
            run.opts.advisory = true;
        } else if (arg == "--inject-kill-bit") {
            const std::string kv = value();
            const std::size_t colon = kv.find(':');
            fatal_if(colon == std::string::npos || colon == 0 ||
                         colon + 1 >= kv.size(),
                     "--inject-kill-bit wants ORDINAL:REG, got '",
                     kv, "'");
            run.fault.enabled = true;
            run.fault.killOrdinal = static_cast<unsigned>(
                parseUint("--inject-kill-bit",
                          kv.substr(0, colon).c_str()));
            const std::uint64_t reg = parseUint(
                "--inject-kill-bit", kv.substr(colon + 1).c_str());
            fatal_if(reg == 0 || reg >= 32,
                     "--inject-kill-bit register must be 1..31");
            run.fault.reg = static_cast<RegIndex>(reg);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--telemetry") {
            telemetry_path = value();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '", arg, "'");
        }
    }

    if (list) {
        for (const std::string &name :
             driver::ScenarioRegistry::instance().names())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    const bool explicit_source = !scenario_names.empty() ||
                                 !manifest_path.empty() ||
                                 !repro_path.empty() || fuzz_count;
    if (all || !explicit_source) {
        for (const std::string &name :
             driver::ScenarioRegistry::instance().names())
            lintRegistered(run, name);
    }
    for (const std::string &name : scenario_names)
        lintRegistered(run, name);

    if (!manifest_path.empty()) {
        sim::CampaignManifest manifest;
        const std::string err = sim::manifestFromJson(
            readFile(manifest_path), manifest);
        fatal_if(!err.empty(), manifest_path, ": ", err);
        lintScenarios(run, manifest.scenarios);
    }

    if (!repro_path.empty()) {
        fuzz::Repro repro;
        const std::string err =
            fuzz::reproFromJson(readFile(repro_path), repro);
        fatal_if(!err.empty(), repro_path, ": ", err);
        std::set<comp::EdviPolicy> policies = {
            comp::EdviPolicy::None, comp::EdviPolicy::CallSites};
        if (repro.oracle.runDense)
            policies.insert(comp::EdviPolicy::Dense);
        run.lintUnit("repro:" + repro.program.name, repro.program,
                     policies);
    }

    if (fuzz_count) {
        if (!seed_given)
            seed = testSeedQuiet(seed);
        lintFuzzCorpus(run, seed, fuzz_count, structured_fraction);
    }

    if (run.fault.enabled && !run.faulted) {
        std::fprintf(stderr,
                     "dvi-lint: --inject-kill-bit matched no kill "
                     "instruction in any linted binary\n");
    }

    std::unique_ptr<obs::TelemetrySink> sink;
    if (!telemetry_path.empty()) {
        sink = obs::TelemetrySink::open(telemetry_path);
        run.report.emitTelemetry(sink.get(), run.units);
    }

    if (json) {
        std::printf("%s", run.report.toJson().dump(2).c_str());
        std::printf("\n");
    } else if (!quiet && !run.report.empty()) {
        run.report.toTable().print();
    }
    std::fprintf(
        stderr,
        "dvi-lint: %zu module%s, %zu binar%s, %zu finding%s "
        "(%zu error%s, %zu warning%s, %zu info%s)%s\n",
        run.units, run.units == 1 ? "" : "s", run.binaries,
        run.binaries == 1 ? "y" : "ies", run.report.size(),
        run.report.size() == 1 ? "" : "s",
        run.report.count(analysis::Severity::Error),
        run.report.count(analysis::Severity::Error) == 1 ? "" : "s",
        run.report.count(analysis::Severity::Warn),
        run.report.count(analysis::Severity::Warn) == 1 ? "" : "s",
        run.report.count(analysis::Severity::Info),
        run.report.count(analysis::Severity::Info) == 1 ? "" : "s",
        run.fault.enabled ? " [fault injection ON]" : "");
    return run.report.failing() ? 1 : 0;
}
