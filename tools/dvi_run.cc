/**
 * @file
 * dvi-run — unified simulation-campaign CLI.
 *
 * Subsumes the per-figure bench mains: builds the requested figure's
 * job grid, shards it across a work-stealing thread pool, renders
 * the figure's tables, and optionally writes a machine-readable
 * report. Reports are deterministic: `--jobs 8` emits a
 * byte-identical file to `--jobs 1` (wall-clock goes to stderr, not
 * into the report).
 *
 * Usage:
 *   dvi-run --figure 5 [--jobs N] [--max-insts M]
 *           [--out results.json] [--format json|csv] [--quiet]
 *   dvi-run --list
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/logging.hh"
#include "driver/figures.hh"

using namespace dvi;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --figure N [options]\n"
        "       %s --list\n"
        "\n"
        "options:\n"
        "  --figure N      paper figure to reproduce (see --list)\n"
        "  --jobs N        worker threads (default 1; 0 = one per\n"
        "                  hardware thread)\n"
        "  --max-insts M   per-run dynamic instruction budget\n"
        "                  (default: the figure's historical budget,\n"
        "                  or DVI_BENCH_INSTS)\n"
        "  --out FILE      write a machine-readable report\n"
        "  --format F      report format: json (default) or csv\n"
        "  --quiet         suppress the figure tables on stdout\n"
        "  --list          list supported figures and exit\n"
        "  --help          this text\n",
        argv0, argv0);
}

void
listFigures()
{
    std::printf("figure  description\n");
    for (int fig : driver::supportedFigures())
        std::printf("%6d  %s\n", fig,
                    driver::figureDescription(fig).c_str());
}

/** Parse a non-negative integer argument; fatal on garbage. */
std::uint64_t
parseUint(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0', "bad value for ", flag,
             ": '", text, "'");
    return static_cast<std::uint64_t>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    int figure = -1;
    driver::FigureOptions opts;
    std::string out_path;
    std::string format = "json";
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--figure") {
            figure = static_cast<int>(parseUint("--figure", value()));
        } else if (arg == "--jobs") {
            opts.jobs =
                static_cast<unsigned>(parseUint("--jobs", value()));
        } else if (arg == "--max-insts") {
            opts.maxInsts = parseUint("--max-insts", value());
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--format") {
            format = value();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listFigures();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '", arg, "'");
        }
    }

    if (figure < 0) {
        usage(argv[0]);
        fatal("--figure is required (or --list)");
    }
    fatal_if(!driver::figureSupported(figure), "figure ", figure,
             " is not supported; try --list");
    const driver::ReportFormat fmt =
        driver::parseReportFormat(format);

    const driver::Campaign campaign =
        driver::buildFigureCampaign(figure, opts.maxInsts);
    driver::CampaignOptions copts;
    copts.jobs = opts.jobs;

    const auto t0 = std::chrono::steady_clock::now();
    const driver::CampaignReport report = campaign.run(copts);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();

    if (!quiet)
        driver::renderFigure(figure, report, std::cout);
    if (!out_path.empty())
        report.writeFile(out_path, fmt);

    // Wall-clock goes to stderr so report files and stdout captures
    // stay byte-identical across worker counts.
    const unsigned workers =
        copts.jobs ? copts.jobs
                   : driver::ThreadPool::hardwareThreads();
    std::fprintf(stderr,
                 "dvi-run: figure %d, %zu jobs, %u worker%s, %.2fs\n",
                 figure, campaign.size(), workers,
                 workers == 1 ? "" : "s", secs);
    return 0;
}
