/**
 * @file
 * dvi-run — unified simulation-campaign CLI.
 *
 * Front end over the scenario registry: builds the requested
 * scenario's job grid, shards it across a work-stealing thread pool,
 * renders the scenario's tables, and optionally writes a
 * machine-readable report. Reports are deterministic: `--jobs 8`
 * emits a byte-identical file to `--jobs 1` (wall-clock goes to
 * stderr, not into the report).
 *
 * Usage:
 *   dvi-run --scenario NAME [--jobs N] [--max-insts M]
 *           [--mode none|idvi|full] [--out results.json]
 *           [--format json|csv] [--quiet]
 *   dvi-run --figure N          (compat alias for --scenario figNN)
 *   dvi-run --list
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/logging.hh"
#include "driver/figures.hh"
#include "driver/scenario_registry.hh"
#include "sim/scenario.hh"

using namespace dvi;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --scenario NAME [options]\n"
        "       %s --figure N [options]\n"
        "       %s --list\n"
        "\n"
        "options:\n"
        "  --scenario NAME registered scenario to run (see --list)\n"
        "  --figure N      paper figure to reproduce (alias for\n"
        "                  --scenario figNN)\n"
        "  --jobs N        worker threads (default 1; 0 = one per\n"
        "                  hardware thread)\n"
        "  --max-insts M   per-run dynamic instruction budget\n"
        "                  (default: the scenario's historical\n"
        "                  budget, or DVI_BENCH_INSTS)\n"
        "  --mode M        run only the jobs of one DVI preset\n"
        "                  (none, idvi, full, dense); renders the\n"
        "                  generic report table\n"
        "  --profile       measure per-job wall-clock; adds wallSeconds\n"
        "                  and instsPerSec to reports (breaks report\n"
        "                  byte-stability across runs)\n"
        "  --out FILE      write a machine-readable report\n"
        "  --format F      report format: json (default) or csv\n"
        "  --quiet         suppress the tables on stdout\n"
        "  --list          list registered scenarios and exit\n"
        "  --help          this text\n",
        argv0, argv0, argv0);
}

void
listScenarios()
{
    std::printf("%-26s description\n", "scenario");
    for (const std::string &name :
         driver::ScenarioRegistry::instance().names())
        std::printf("%-26s %s\n", name.c_str(),
                    driver::scenarioFor(name).description.c_str());
}

/** Parse a non-negative integer argument; fatal on garbage. */
std::uint64_t
parseUint(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0', "bad value for ", flag,
             ": '", text, "'");
    return static_cast<std::uint64_t>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenario;
    driver::ScenarioOptions opts;
    std::string out_path;
    std::string format = "json";
    std::string mode_filter;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--scenario") {
            scenario = value();
        } else if (arg == "--figure") {
            const int figure =
                static_cast<int>(parseUint("--figure", value()));
            scenario = driver::figureScenarioName(figure);
            fatal_if(scenario.empty(), "figure ", figure,
                     " is not supported; try --list");
        } else if (arg == "--jobs") {
            opts.jobs =
                static_cast<unsigned>(parseUint("--jobs", value()));
        } else if (arg == "--max-insts") {
            opts.maxInsts = parseUint("--max-insts", value());
        } else if (arg == "--mode") {
            mode_filter = value();
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--format") {
            format = value();
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listScenarios();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '", arg, "'");
        }
    }

    if (scenario.empty()) {
        usage(argv[0]);
        fatal("--scenario is required (or --figure / --list)");
    }
    fatal_if(!driver::ScenarioRegistry::instance().find(scenario),
             "scenario '", scenario,
             "' is not registered; try --list");
    const driver::ReportFormat fmt =
        driver::parseReportFormat(format);

    // Resolve the preset filter up front so a typo is a friendly
    // usage error, not an abort mid-campaign. The preset table is a
    // superset of the legacy DviMode tokens (none/idvi/full) plus
    // the dense design point, parsed case-insensitively like
    // harness::parseDviMode.
    std::string preset_token;
    if (!mode_filter.empty()) {
        const std::optional<sim::DviPreset> preset =
            sim::parsePreset(mode_filter);
        if (!preset) {
            std::fprintf(stderr,
                         "%s: invalid DVI mode '%s' for --mode; "
                         "valid values: %s\n",
                         argv[0], mode_filter.c_str(),
                         sim::presetTokens().c_str());
            usage(argv[0]);
            return 2;
        }
        preset_token = preset->name;
    }

    const driver::RegisteredScenario &entry =
        driver::scenarioFor(scenario);
    driver::Campaign campaign = entry.build(
        driver::resolveScenarioInsts(entry, opts.maxInsts));

    // A preset filter re-shapes the grid, so the figure-specific
    // renderer no longer applies; fall back to the generic table.
    bool filtered = false;
    if (!preset_token.empty()) {
        std::vector<sim::Scenario> kept;
        for (const driver::JobSpec &job : campaign.jobs())
            if (job.scenario.preset == preset_token)
                kept.push_back(job.scenario);
        fatal_if(kept.empty(), "scenario '", scenario,
                 "' has no jobs with preset '", preset_token, "'");
        campaign = driver::Campaign(
            campaign.name() + "-" + preset_token, std::move(kept));
        filtered = true;
    }

    driver::CampaignOptions copts;
    copts.jobs = opts.jobs;
    copts.profile = opts.profile || entry.profile;

    const auto t0 = std::chrono::steady_clock::now();
    const driver::CampaignReport report = campaign.run(copts);
    const auto t1 = std::chrono::steady_clock::now();

    // Artifact emission (e.g. BENCH files) is not display: it runs
    // under --quiet and preset filters alike.
    if (entry.emit)
        entry.emit(report);
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();

    if (!quiet) {
        if (!filtered && entry.render)
            entry.render(report, std::cout);
        else
            std::cout << report.toTable().render();
    }
    if (!out_path.empty())
        report.writeFile(out_path, fmt);

    // Wall-clock goes to stderr so report files and stdout captures
    // stay byte-identical across worker counts.
    const unsigned workers =
        copts.jobs ? copts.jobs
                   : driver::ThreadPool::hardwareThreads();
    std::fprintf(
        stderr, "dvi-run: scenario %s, %zu jobs, %u worker%s, %.2fs\n",
        campaign.name().c_str(), campaign.size(), workers,
        workers == 1 ? "" : "s", secs);
    return 0;
}
