/**
 * @file
 * dvi-run — unified simulation-campaign CLI.
 *
 * Front end over the scenario registry and the manifest layer. A
 * campaign can come from three sources — a registered scenario
 * (--scenario / --figure), a user-authored JSON manifest
 * (--manifest), or a previous report (reports embed their resolved
 * scenarios, so they load as manifests too) — and every source
 * accepts the same dotted-path overrides (--set). Reports are
 * deterministic: `--jobs 8` emits a byte-identical file to
 * `--jobs 1` (wall-clock goes to stderr, not into the report).
 *
 * Usage:
 *   dvi-run --scenario NAME [--jobs N] [--max-insts M]
 *           [--mode none|idvi|full|dense] [--set path=value]...
 *           [--out results.json] [--format json|csv] [--quiet]
 *   dvi-run --manifest FILE [same options]
 *   dvi-run --emit-manifest NAME [--max-insts M] [--set ...]
 *           [--out manifest.json]
 *   dvi-run --figure N          (compat alias for --scenario figNN)
 *   dvi-run --list
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "base/cli.hh"
#include "base/failpoint.hh"
#include "base/logging.hh"
#include "compiler/compile.hh"
#include "driver/figures.hh"
#include "driver/scenario_registry.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "sim/manifest.hh"
#include "sim/scenario.hh"
#include "workload/benchmarks.hh"

using namespace dvi;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --scenario NAME [options]\n"
        "       %s --manifest FILE [options]\n"
        "       %s --emit-manifest NAME [--out FILE]\n"
        "       %s --figure N [options]\n"
        "       %s --list\n"
        "\n"
        "campaign sources (exactly one):\n"
        "  --scenario NAME registered scenario to run (see --list)\n"
        "  --manifest FILE run a JSON campaign manifest; campaign\n"
        "                  reports also load here (they embed their\n"
        "                  resolved scenarios)\n"
        "  --figure N      paper figure to reproduce (alias for\n"
        "                  --scenario figNN)\n"
        "\n"
        "options:\n"
        "  --emit-manifest NAME  write the named scenario's fully\n"
        "                  expanded manifest (to --out, else stdout)\n"
        "                  instead of running it\n"
        "  --set PATH=VALUE      override one bound scenario field\n"
        "                  on every job, e.g. --set\n"
        "                  hardware.core.windowSize=128 or --set\n"
        "                  preset=dense; repeatable, applies to any\n"
        "                  campaign source\n"
        "  --jobs N        worker threads (default 1; 0 = one per\n"
        "                  hardware thread)\n"
        "  --max-insts M   per-run dynamic instruction budget\n"
        "                  (default: the scenario's historical\n"
        "                  budget, or DVI_BENCH_INSTS)\n"
        "  --mode M        run only the jobs of one DVI preset\n"
        "                  (none, idvi, full, dense); renders the\n"
        "                  generic report table\n"
        "  --profile       measure per-job wall-clock; adds wallSeconds\n"
        "                  and instsPerSec to reports (breaks report\n"
        "                  byte-stability across runs)\n"
        "  --out FILE      write a machine-readable report (or the\n"
        "                  manifest, under --emit-manifest)\n"
        "  --format F      report format: json (default) or csv\n"
        "  --telemetry F   stream NDJSON telemetry events to file F\n"
        "                  ('-' = stderr); reports stay\n"
        "                  byte-identical with or without it\n"
        "  --metrics-interval N\n"
        "                  flush a `metrics` event every N ms\n"
        "                  (requires --telemetry)\n"
        "  --progress      live progress line on stderr, rendered\n"
        "                  from the telemetry event stream\n"
        "  --retries N     per-job retry budget for transient\n"
        "                  failures (default 2); exhausted retries\n"
        "                  quarantine the job and mark the report\n"
        "                  degraded (exit 3)\n"
        "  --chaos SPEC    arm deterministic failpoints, e.g.\n"
        "                  'driver.compile=throw@1in20,seed=42'\n"
        "                  (also: DVI_CHAOS env var); see DESIGN.md\n"
        "                  §12\n"
        "  --lint          statically verify every binary the\n"
        "                  campaign will run (src/analysis rules,\n"
        "                  including the independent E-DVI kill-mask\n"
        "                  prover) before any job launches; findings\n"
        "                  abort the run with exit 1\n"
        "  --quiet         suppress the tables on stdout\n"
        "  --list          list registered scenarios and exit\n"
        "  --help          this text\n",
        argv0, argv0, argv0, argv0, argv0);
}

void
listScenarios()
{
    // Job counts come from actually building each grid (cheap: no
    // compilation or simulation), so the listing is what
    // --emit-manifest will expand, not an estimate.
    std::printf("%-26s %6s  description\n", "scenario", "jobs");
    for (const std::string &name :
         driver::ScenarioRegistry::instance().names()) {
        const driver::RegisteredScenario &s =
            driver::scenarioFor(name);
        const std::size_t jobs =
            s.build(driver::resolveScenarioInsts(s, 0)).size();
        std::printf("%-26s %6zu  %s\n", name.c_str(), jobs,
                    s.description.c_str());
    }
}

using cli::parseUint;
using cli::readFile;

/** One --set override, kept in command-line order. */
struct Override
{
    std::string path;
    std::string value;
};

/** Apply every --set override to one scenario; fatal with the
 * offending dotted path on error. */
void
applyOverrides(sim::Scenario &s,
               const std::vector<Override> &overrides)
{
    fields::FieldSet fs = sim::scenarioFields(s);
    for (const Override &o : overrides) {
        const std::string err = fs.applyString(o.path, o.value);
        fatal_if(!err.empty(), "--set ", o.path, "=", o.value, ": ",
                 err);
    }
}

// SIGINT/SIGTERM request a *cooperative* stop: the campaign skips
// jobs that have not started, in-flight jobs run to completion, and
// every sink flushes whole NDJSON lines before exit 0. The handler
// itself only flips the atomic (async-signal-safe).
std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenario;
    std::string manifest_path;
    std::string emit_manifest;
    driver::ScenarioOptions opts;
    std::string out_path;
    std::string format = "json";
    std::string mode_filter;
    std::vector<Override> overrides;
    bool quiet = false;
    bool jobs_given = false;
    std::string telemetry_path;
    unsigned metrics_interval = 0;
    bool progress = false;
    std::string chaos_spec;
    bool retries_given = false;
    unsigned retries = 0;
    bool lint = false;

    // Failpoints arm before anything can hit one; an explicit
    // --chaos below replaces the environment's spec.
    {
        const std::string err = fail::configureFromEnv();
        fatal_if(!err.empty(), "DVI_CHAOS: ", err);
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--scenario") {
            scenario = value();
        } else if (arg == "--figure") {
            const int figure =
                static_cast<int>(parseUint("--figure", value()));
            scenario = driver::figureScenarioName(figure);
            fatal_if(scenario.empty(), "figure ", figure,
                     " is not supported; try --list");
        } else if (arg == "--manifest") {
            manifest_path = value();
        } else if (arg == "--emit-manifest") {
            emit_manifest = value();
        } else if (arg == "--set") {
            const std::string kv = value();
            const std::size_t eq = kv.find('=');
            fatal_if(eq == std::string::npos || eq == 0,
                     "--set wants PATH=VALUE, got '", kv, "'");
            overrides.push_back(
                {kv.substr(0, eq), kv.substr(eq + 1)});
        } else if (arg == "--jobs") {
            opts.jobs =
                static_cast<unsigned>(parseUint("--jobs", value()));
            jobs_given = true;
        } else if (arg == "--max-insts") {
            opts.maxInsts = parseUint("--max-insts", value());
        } else if (arg == "--mode") {
            mode_filter = value();
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--format") {
            format = value();
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--telemetry") {
            telemetry_path = value();
        } else if (arg == "--metrics-interval") {
            metrics_interval = static_cast<unsigned>(
                parseUint("--metrics-interval", value()));
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--chaos") {
            chaos_spec = value();
            const std::string err = fail::configure(chaos_spec);
            fatal_if(!err.empty(), "--chaos: ", err);
        } else if (arg == "--retries") {
            retries = static_cast<unsigned>(
                parseUint("--retries", value()));
            retries_given = true;
        } else if (arg == "--lint") {
            lint = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listScenarios();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '", arg, "'");
        }
    }

    // ------------------------------------------------ emit-manifest
    if (!emit_manifest.empty()) {
        fatal_if(!scenario.empty() || !manifest_path.empty(),
                 "--emit-manifest does not combine with --scenario/"
                 "--figure/--manifest");
        // Run-only flags are rejected rather than silently ignored:
        // a user passing --mode expects a smaller manifest, not the
        // full grid.
        fatal_if(!mode_filter.empty() || jobs_given ||
                     format != "json" || opts.profile || quiet ||
                     !telemetry_path.empty() || metrics_interval ||
                     progress,
                 "--emit-manifest only combines with --max-insts, "
                 "--set, and --out");
        sim::CampaignManifest m = driver::scenarioManifest(
            driver::scenarioFor(emit_manifest), opts.maxInsts);
        for (sim::Scenario &s : m.scenarios)
            applyOverrides(s, overrides);
        const std::string text = sim::manifestToJson(m);
        if (out_path.empty()) {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(out_path, std::ios::binary);
            fatal_if(!out, "cannot open '", out_path,
                     "' for writing");
            out << text;
            out.flush();
            fatal_if(!out, "write to '", out_path, "' failed");
        }
        return 0;
    }

    // ------------------------------------------- resolve the source
    fatal_if(!scenario.empty() && !manifest_path.empty(),
             "--scenario/--figure and --manifest are mutually "
             "exclusive");
    if (scenario.empty() && manifest_path.empty()) {
        usage(argv[0]);
        fatal("--scenario is required (or --manifest / --figure / "
              "--list)");
    }
    const driver::ReportFormat fmt =
        driver::parseReportFormat(format);

    // Resolve the preset filter up front so a typo is a friendly
    // usage error, not an abort mid-campaign. The preset table is
    // the paper's three columns (none/idvi/full) plus the dense
    // design point, parsed case-insensitively.
    std::string preset_token;
    if (!mode_filter.empty()) {
        const std::optional<sim::DviPreset> preset =
            sim::parsePreset(mode_filter);
        if (!preset) {
            std::fprintf(stderr,
                         "%s: invalid DVI mode '%s' for --mode; "
                         "valid values: %s\n",
                         argv[0], mode_filter.c_str(),
                         sim::presetTokens().c_str());
            usage(argv[0]);
            return 2;
        }
        preset_token = preset->name;
    }

    const driver::RegisteredScenario *entry = nullptr;
    driver::Campaign campaign("");
    bool profile_default = false;
    if (!scenario.empty()) {
        entry = &driver::scenarioFor(scenario);
        campaign = entry->build(
            driver::resolveScenarioInsts(*entry, opts.maxInsts));
        profile_default = entry->profile;
    } else {
        sim::CampaignManifest m;
        const std::string err =
            sim::manifestFromJson(readFile(manifest_path), m);
        fatal_if(!err.empty(), manifest_path, ": ", err);
        fatal_if(opts.maxInsts != 0,
                 "--max-insts does not apply to manifests; use "
                 "--set budget.maxInsts=",
                 opts.maxInsts, " instead");
        campaign = driver::Campaign(m.name, std::move(m.scenarios));
        profile_default = m.profile;
    }

    // A figure-specific renderer assumes the exact grid its builder
    // laid out; --set and --mode both break that assumption, so
    // either falls back to the generic table.
    bool generic_render = false;

    // Dotted-path overrides apply to every job, whatever the
    // source — this replaces per-flag plumbing for each knob.
    if (!overrides.empty()) {
        std::vector<sim::Scenario> adjusted;
        adjusted.reserve(campaign.size());
        for (const driver::JobSpec &job : campaign.jobs()) {
            sim::Scenario s = job.scenario;
            applyOverrides(s, overrides);
            adjusted.push_back(std::move(s));
        }
        campaign = driver::Campaign(campaign.name(),
                                    std::move(adjusted));
        generic_render = true;
    }

    // A preset filter re-shapes the grid.
    if (!preset_token.empty()) {
        std::vector<sim::Scenario> kept;
        for (const driver::JobSpec &job : campaign.jobs())
            if (job.scenario.preset == preset_token)
                kept.push_back(job.scenario);
        fatal_if(kept.empty(), "campaign '", campaign.name(),
                 "' has no jobs with preset '", preset_token, "'");
        campaign = driver::Campaign(
            campaign.name() + "-" + preset_token, std::move(kept));
        generic_render = true;
    }

    driver::CampaignOptions copts;
    copts.jobs = opts.jobs;
    copts.profile = opts.profile || profile_default;
    if (retries_given)
        copts.retry.maxRetries = retries;

    // Telemetry is strictly out of band: the sink (a file under
    // --telemetry, observer-only under a bare --progress) sees every
    // event, and the report is byte-identical either way.
    fatal_if(metrics_interval && telemetry_path.empty(),
             "--metrics-interval requires --telemetry");
    std::unique_ptr<obs::TelemetrySink> sink;
    if (!telemetry_path.empty())
        sink = obs::TelemetrySink::open(telemetry_path);
    else if (progress)
        sink = std::make_unique<obs::TelemetrySink>();
    obs::ProgressRenderer renderer;
    if (sink && progress)
        sink->addObserver(
            [&renderer](const obs::Event &e) { renderer.observe(e); });
    obs::MetricRegistry metrics;
    std::unique_ptr<obs::MetricFlusher> flusher;
    if (sink) {
        copts.telemetry = sink.get();
        copts.metrics = &metrics;
        // Global escape hatch for layers without plumbing: the
        // timing core's mid-run samples and the warn()/inform()
        // mirror. Cleared before the sink dies, below.
        obs::setGlobalSink(sink.get());
        obs::setCoreSampleInsts(10000);
        if (metrics_interval)
            flusher = std::make_unique<obs::MetricFlusher>(
                metrics, *sink, metrics_interval);
    }

    // ------------------------------------------- pre-launch lint
    // Statically verify every distinct (benchmark, policy) binary
    // the campaign references before any job launches: a campaign
    // burning hours on an unsoundly annotated binary is wasted
    // compute AND a wrong conclusion.
    if (lint) {
        std::map<workload::BenchmarkId,
                 std::set<comp::EdviPolicy>>
            variants;
        for (const driver::JobSpec &job : campaign.jobs())
            variants[job.scenario.workload].insert(
                job.scenario.binary.edvi);
        analysis::FindingReport findings;
        std::size_t binaries = 0;
        for (const auto &[id, policies] : variants) {
            prog::Module mod = workload::generateBenchmark(id);
            mod.name = workload::benchmarkName(id);
            findings.merge(analysis::lintModule(mod));
            if (!analysis::firstModuleError(mod).empty())
                continue;  // compiling broken IR would panic
            for (comp::EdviPolicy policy : policies) {
                comp::CompileOptions lint_copts;
                lint_copts.edvi = policy;
                comp::Executable exe =
                    comp::compile(mod, lint_copts);
                exe.name = mod.name + "/" +
                           sim::edviPolicyName(policy);
                ++binaries;
                findings.merge(analysis::lintExecutable(exe));
            }
        }
        findings.emitTelemetry(sink.get(), variants.size());
        if (findings.failing()) {
            findings.toTable("pre-launch lint findings").print();
            flusher.reset();
            if (sink) {
                metrics.flush(*sink);
                obs::setGlobalSink(nullptr);
                obs::setCoreSampleInsts(0);
            }
            std::fprintf(
                stderr,
                "dvi-run: --lint found %zu finding(s) across %zu "
                "binar%s; campaign %s not started\n",
                findings.size(), binaries,
                binaries == 1 ? "y" : "ies",
                campaign.name().c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "dvi-run: lint clean (%zu module(s), %zu "
                     "binar%s)\n",
                     variants.size(), binaries,
                     binaries == 1 ? "y" : "ies");
    }

    copts.cancel = &g_interrupted;
    std::signal(SIGINT, &onSignal);
    std::signal(SIGTERM, &onSignal);

    const auto t0 = std::chrono::steady_clock::now();
    driver::CampaignReport report;
    try {
        report = campaign.run(copts);
    } catch (const std::exception &e) {
        // A campaign-level fault (aggregation, pool teardown) is
        // beyond per-job isolation; flush telemetry and report it
        // as a hard failure.
        flusher.reset();
        if (sink) {
            metrics.flush(*sink);
            obs::setGlobalSink(nullptr);
            obs::setCoreSampleInsts(0);
        }
        std::fprintf(stderr, "dvi-run: campaign %s failed: %s\n",
                     campaign.name().c_str(), e.what());
        return 1;
    }
    const auto t1 = std::chrono::steady_clock::now();
    flusher.reset();

    // An interrupted campaign has well-formed telemetry but a
    // partial result set; emitting the report would look complete,
    // so it is withheld and the interruption is announced instead.
    if (report.cancelled) {
        if (sink) {
            metrics.flush(*sink);
            obs::setGlobalSink(nullptr);
            obs::setCoreSampleInsts(0);
        }
        std::fprintf(stderr,
                     "dvi-run: interrupted; campaign %s stopped "
                     "before all %zu job(s) ran, report not written\n",
                     campaign.name().c_str(), campaign.size());
        return 0;
    }

    // Artifact emission (e.g. BENCH files) is not display: it runs
    // under --quiet and preset filters alike.
    if (entry && entry->emit)
        entry->emit(report);
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();

    {
        obs::PhaseSpan span(sink.get(), "aggregate");
        if (!quiet) {
            if (!generic_render && entry && entry->render)
                entry->render(report, std::cout);
            else
                std::cout << report.toTable().render();
        }
        if (!out_path.empty())
            report.writeFile(out_path, fmt);
    }
    if (sink) {
        metrics.flush(*sink);
        obs::setGlobalSink(nullptr);
        obs::setCoreSampleInsts(0);
    }

    // Wall-clock goes to stderr so report files and stdout captures
    // stay byte-identical across worker counts.
    const unsigned workers =
        copts.jobs ? copts.jobs
                   : driver::ThreadPool::hardwareThreads();
    std::fprintf(
        stderr, "dvi-run: scenario %s, %zu jobs, %u worker%s, %.2fs\n",
        campaign.name().c_str(), campaign.size(), workers,
        workers == 1 ? "" : "s", secs);

    // A degraded campaign still wrote its (partial) report above —
    // quarantined jobs carry error records in it — but the exit
    // code must not look like success to scripts.
    if (report.degraded) {
        std::size_t failedJobs = 0;
        for (const driver::JobResult &r : report.results)
            if (r.failed)
                ++failedJobs;
        std::fprintf(stderr,
                     "dvi-run: campaign degraded: %zu of %zu job(s) "
                     "quarantined after retries; see the report's "
                     "error records\n",
                     failedJobs, report.results.size());
        return 3;
    }
    return 0;
}
