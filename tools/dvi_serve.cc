/**
 * @file
 * dvi-serve — resident campaign server CLI.
 *
 * Front end over serve::DviServer: parse sizing flags, install the
 * telemetry plumbing, start the server, and turn SIGINT/SIGTERM
 * into a graceful drain — in-flight jobs finish, every
 * TelemetrySink flushes whole NDJSON lines, and the process exits
 * 0.
 *
 * Usage:
 *   dvi-serve [--port P] [--max-concurrent N] [--max-queue N]
 *             [--jobs N] [--telemetry FILE]
 *
 * The HTTP API it serves is documented in src/serve/server.hh and
 * DESIGN.md §11; tools/serve_client.py is the reference client.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "base/cli.hh"
#include "base/failpoint.hh"
#include "base/logging.hh"
#include "obs/telemetry.hh"
#include "serve/server.hh"

using namespace dvi;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "options:\n"
        "  --port P          TCP port to listen on (default 8080;\n"
        "                    0 = kernel-assigned, printed at start)\n"
        "  --max-concurrent N\n"
        "                    campaigns running at once (default 2)\n"
        "  --max-queue N     campaigns held pending beyond the\n"
        "                    running set; submissions beyond that\n"
        "                    get HTTP 429 + Retry-After (default 8)\n"
        "  --jobs N          shared worker-pool threads for campaign\n"
        "                    jobs (default 0 = one per hardware\n"
        "                    thread)\n"
        "  --telemetry F     stream server-side NDJSON telemetry\n"
        "                    (log events outside any campaign) to\n"
        "                    file F ('-' = stderr); per-campaign\n"
        "                    events always stream per campaign via\n"
        "                    GET /campaigns/<id>/events\n"
        "  --io-timeout S    per-connection socket read/write\n"
        "                    timeout in seconds; 0 disables\n"
        "                    (default 30)\n"
        "  --retries N       per-job retry budget for transient\n"
        "                    failures in every campaign (default 2)\n"
        "  --chaos SPEC      arm deterministic failpoints, e.g.\n"
        "                    'serve.request=throw@1in10,seed=42'\n"
        "                    (also: DVI_CHAOS env var); see\n"
        "                    DESIGN.md §12\n"
        "  --help            this text\n"
        "\n"
        "endpoints: POST /campaigns, GET /campaigns[/<id>[/report|\n"
        "/events]], DELETE /campaigns/<id>, GET /healthz, GET\n"
        "/metrics. SIGINT/SIGTERM drain in-flight jobs and exit 0.\n",
        argv0);
}

// Signal -> main-thread handoff: the handler only flips an atomic
// and pokes no locks (async-signal-safety); the main thread sleeps
// on a condition variable it re-checks on a short period.
std::atomic<bool> g_shutdown{false};

void
onSignal(int)
{
    g_shutdown.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeOptions opts;
    std::string telemetry_path;

    // Failpoints arm before the server exists; an explicit --chaos
    // below replaces the environment's spec.
    {
        const std::string err = fail::configureFromEnv();
        fatal_if(!err.empty(), "DVI_CHAOS: ", err);
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = static_cast<std::uint16_t>(
                cli::parseUint("--port", value()));
        } else if (arg == "--max-concurrent") {
            opts.maxConcurrent = static_cast<unsigned>(
                cli::parseUint("--max-concurrent", value()));
            fatal_if(opts.maxConcurrent == 0,
                     "--max-concurrent must be at least 1");
        } else if (arg == "--max-queue") {
            opts.maxQueue = static_cast<std::size_t>(
                cli::parseUint("--max-queue", value()));
        } else if (arg == "--jobs") {
            opts.workers = static_cast<unsigned>(
                cli::parseUint("--jobs", value()));
        } else if (arg == "--telemetry") {
            telemetry_path = value();
        } else if (arg == "--io-timeout") {
            opts.ioTimeoutSeconds = static_cast<unsigned>(
                cli::parseUint("--io-timeout", value()));
        } else if (arg == "--retries") {
            opts.retry.maxRetries = static_cast<unsigned>(
                cli::parseUint("--retries", value()));
        } else if (arg == "--chaos") {
            const std::string err = fail::configure(value());
            fatal_if(!err.empty(), "--chaos: ", err);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '", arg, "'");
        }
    }

    // The server sink is the fallback for events emitted outside
    // any campaign scope (startup/shutdown log lines); per-campaign
    // sinks take precedence on worker threads via obs::SinkScope.
    // Observer-only when no --telemetry file: the log mirror is
    // still installed, so campaign streams carry their own log
    // events.
    std::unique_ptr<obs::TelemetrySink> sink =
        telemetry_path.empty()
            ? std::make_unique<obs::TelemetrySink>()
            : obs::TelemetrySink::open(telemetry_path);
    obs::setGlobalSink(sink.get());
    obs::setCoreSampleInsts(10000);

    std::signal(SIGINT, &onSignal);
    std::signal(SIGTERM, &onSignal);

    {
        serve::DviServer server(opts);
        server.start();
        std::printf("dvi-serve: ready on port %u\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);

        while (!g_shutdown.load(std::memory_order_acquire))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));

        inform("dvi-serve: signal received; draining ",
               server.campaignsSubmitted(),
               " submitted campaign(s)");
        server.shutdown();
    }

    // Sink teardown after the server: every campaign reached a
    // terminal state and flushed, so the stream ends on a whole
    // line.
    obs::setGlobalSink(nullptr);
    obs::setCoreSampleInsts(0);
    sink.reset();
    std::fprintf(stderr, "dvi-serve: clean shutdown\n");
    return 0;
}
