#!/usr/bin/env python3
"""Reference client for the dvi-serve HTTP API (stdlib only).

Subcommands mirror the endpoint table in src/serve/server.hh:

  submit MANIFEST [--wait] [--poll-ms N]   POST /campaigns
  status ID                                GET  /campaigns/<id>
  list                                     GET  /campaigns
  report ID [--out FILE]                   GET  /campaigns/<id>/report
  events ID [--out FILE] [--follow]        GET  /campaigns/<id>/events
  cancel ID                                DELETE /campaigns/<id>
  metrics                                  GET  /metrics
  health                                   GET  /healthz

`submit --wait` polls until the campaign reaches a terminal state and
exits 0 only for `done`, so CI can chain it directly with a report
fetch. `events` consumes the chunked NDJSON stream and writes the
exact bytes to --out (default stdout); the capture validates with
tools/check_telemetry.py just like a --telemetry file.

Exit codes: 0 success; 1 transport/protocol failure; 2 usage; 3 the
server answered with an error status (body printed to stderr); 4 a
--wait'ed campaign finished `failed` or `cancelled`.
"""

import argparse
import http.client
import json
import sys
import time


def connect(args):
    return http.client.HTTPConnection(args.host, args.port,
                                      timeout=args.timeout)


def request(args, method, path, body=None):
    """One request; returns (status, headers, bytes). Idempotent
    GETs are retried a couple of times on connection resets (the
    server may have timed out a kept-alive socket between requests);
    anything else exits 1 so callers only see well-formed
    responses."""
    attempts = 3 if method == "GET" else 1
    for attempt in range(attempts):
        conn = connect(args)
        try:
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, dict(resp.getheaders()), data
        except (ConnectionError, OSError,
                http.client.HTTPException) as e:
            if attempt + 1 < attempts:
                print(f"serve_client: {method} {path}: {e}; "
                      f"retrying", file=sys.stderr)
                time.sleep(0.2 * (attempt + 1))
                continue
            print(f"serve_client: {method} {path}: {e}",
                  file=sys.stderr)
            sys.exit(1)
        finally:
            conn.close()


def expect(status, headers, data, accept=(200,)):
    """Print an error response and exit 3 unless `status` is
    acceptable; otherwise return the decoded body."""
    if status not in accept:
        sys.stderr.write(f"serve_client: HTTP {status}\n")
        sys.stderr.write(data.decode("utf-8", "replace"))
        if not data.endswith(b"\n"):
            sys.stderr.write("\n")
        sys.exit(3)
    return data


def emit(data, out_path):
    if out_path:
        with open(out_path, "wb") as f:
            f.write(data)
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()


def poll_status(args, cid):
    status, headers, data = request(args, "GET", f"/campaigns/{cid}")
    body = expect(status, headers, data)
    return json.loads(body)


def cmd_submit(args):
    with open(args.manifest, "rb") as f:
        manifest = f.read()
    # A 429 carries Retry-After: honor it (capped, so a lying server
    # cannot park us for an hour) up to --max-retries times before
    # giving up with the usual exit 3.
    for attempt in range(args.max_retries + 1):
        status, headers, data = request(args, "POST", "/campaigns",
                                        body=manifest)
        if status != 429:
            break
        try:
            retry = float(headers.get("Retry-After", "1"))
        except ValueError:
            retry = 1.0
        retry = min(max(retry, 0.1), 30.0)
        if attempt < args.max_retries:
            print(f"serve_client: server busy (429); retrying in "
                  f"{retry:.1f}s "
                  f"({attempt + 1}/{args.max_retries})",
                  file=sys.stderr)
            time.sleep(retry)
    if status == 429:
        retry = headers.get("Retry-After", "?")
        print(f"serve_client: server busy (429), Retry-After: "
              f"{retry}s", file=sys.stderr)
        sys.exit(3)
    body = expect(status, headers, data, accept=(202,))
    reply = json.loads(body)
    cid = reply["id"]
    print(cid)
    if not args.wait:
        return
    while True:
        st = poll_status(args, cid)
        if st["state"] in ("done", "failed", "cancelled"):
            break
        time.sleep(args.poll_ms / 1000.0)
    if st["state"] != "done":
        print(f"serve_client: campaign {cid} finished "
              f"{st['state']}: {st.get('error', '')}",
              file=sys.stderr)
        sys.exit(4)


def cmd_status(args):
    st = poll_status(args, args.id)
    print(json.dumps(st, indent=2))


def cmd_list(args):
    status, headers, data = request(args, "GET", "/campaigns")
    emit(expect(status, headers, data), None)


def cmd_report(args):
    status, headers, data = request(
        args, "GET", f"/campaigns/{args.id}/report")
    emit(expect(status, headers, data), args.out)


def cmd_events(args):
    """Stream the chunked NDJSON event feed; http.client decodes the
    chunking, so reads yield raw event bytes until the server closes
    the stream (terminal campaign, or never under --follow against a
    live one)."""
    path = f"/campaigns/{args.id}/events"
    if not args.follow:
        path += "?follow=0"
    conn = connect(args)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        if resp.status != 200:
            expect(resp.status, {}, resp.read())
        out = open(args.out, "wb") if args.out else sys.stdout.buffer
        try:
            while True:
                chunk = resp.read(65536)
                if not chunk:
                    break
                out.write(chunk)
                out.flush()
        finally:
            if args.out:
                out.close()
    except (ConnectionError, OSError, http.client.HTTPException) as e:
        print(f"serve_client: GET {path}: {e}", file=sys.stderr)
        sys.exit(1)
    finally:
        conn.close()


def cmd_cancel(args):
    status, headers, data = request(args, "DELETE",
                                    f"/campaigns/{args.id}")
    emit(expect(status, headers, data, accept=(202,)), None)


def cmd_metrics(args):
    status, headers, data = request(args, "GET", "/metrics")
    emit(expect(status, headers, data), None)


def cmd_health(args):
    status, headers, data = request(args, "GET", "/healthz")
    emit(expect(status, headers, data), None)


def main():
    ap = argparse.ArgumentParser(
        description="dvi-serve HTTP API client")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8080)
    ap.add_argument("--timeout", type=float, default=30.0,
                    help="per-request socket timeout in seconds")
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("submit", help="POST a campaign manifest")
    p.add_argument("manifest")
    p.add_argument("--wait", action="store_true",
                   help="poll until the campaign is terminal; exit "
                        "4 unless it finished done")
    p.add_argument("--poll-ms", type=int, default=250)
    p.add_argument("--max-retries", type=int, default=3,
                   help="retries when the server answers 429, "
                        "honoring Retry-After (default 3)")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="one campaign's status")
    p.add_argument("id")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("list", help="all campaigns")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("report", help="fetch a finished report")
    p.add_argument("id")
    p.add_argument("--out")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("events", help="stream NDJSON telemetry")
    p.add_argument("id")
    p.add_argument("--out")
    p.add_argument("--follow", action="store_true",
                   help="keep streaming while the campaign runs "
                        "(default: replay buffered events and stop)")
    p.set_defaults(fn=cmd_events)

    p = sub.add_parser("cancel", help="request cancellation")
    p.add_argument("id")
    p.set_defaults(fn=cmd_cancel)

    p = sub.add_parser("metrics", help="server metrics snapshot")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("health", help="liveness probe")
    p.set_defaults(fn=cmd_health)

    args = ap.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
